//! Fallacy 4 / **Table 1**: packet pairs are as good as packet trains.
//!
//! With fluid cross traffic, pairs and trains are equivalent. Real cross
//! traffic has discrete, modal packet sizes, so the cross traffic that
//! interferes inside one pair gap takes quantised values (one 1500 B
//! packet, two 40 B packets, ...). The bigger the cross packets, the
//! coarser the quantisation, the higher the per-sample noise — and the
//! more samples `k` are needed for a given accuracy. Table 1 reports the
//! relative error of the `k`-sample mean for cross packet sizes
//! `Lc ∈ {40, 512, 1500}` and `k ∈ {10, 20, 50, 100}`, with 1500 B
//! probing packets and the avail-bw held at 25 Mb/s.

use abw_exec::Executor;
use abw_netsim::SimDuration;
use abw_stats::sampling::relative_error;
use abw_traffic::SizeDist;

use crate::fluid::direct_probing_estimate;
use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::stream::StreamSpec;

/// Configuration of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct PairsVsTrainsConfig {
    /// Cross-traffic packet sizes to sweep (paper: 40, 512, 1500).
    pub cross_sizes: Vec<u32>,
    /// Sample counts to evaluate (paper: 10, 20, 50, 100).
    pub sample_counts: Vec<usize>,
    /// Total pair samples collected per cross size (split into groups of
    /// `k` to estimate the error of the `k`-sample mean).
    pub pool_size: usize,
    /// Intra-pair probing rate (paper setup: 40 Mb/s).
    pub pair_rate_bps: f64,
    /// Probing packet size (paper: 1500 B).
    pub probe_size: u32,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for PairsVsTrainsConfig {
    fn default() -> Self {
        PairsVsTrainsConfig {
            cross_sizes: vec![40, 512, 1500],
            sample_counts: vec![10, 20, 50, 100],
            pool_size: 1000,
            pair_rate_bps: 40e6,
            probe_size: 1500,
            seed: 0x7AB1,
        }
    }
}

impl PairsVsTrainsConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        PairsVsTrainsConfig {
            cross_sizes: vec![40, 1500],
            sample_counts: vec![10, 100],
            pool_size: 400,
            ..PairsVsTrainsConfig::default()
        }
    }
}

/// One row of Table 1 (one cross packet size).
#[derive(Debug, Clone)]
pub struct PairsVsTrainsRow {
    /// Cross-traffic packet size `Lc`, bytes.
    pub cross_size: u32,
    /// `(k, mean |relative error| of the k-sample mean)` per sample count.
    pub errors: Vec<(usize, f64)>,
    /// Per-sample standard deviation, Mb/s (the quantisation noise).
    pub sample_sd_mbps: f64,
}

/// The Table 1 result.
#[derive(Debug, Clone)]
pub struct PairsVsTrainsResult {
    /// One row per cross packet size.
    pub rows: Vec<PairsVsTrainsRow>,
}

/// Runs the Table 1 experiment with the executor configured from
/// `ABW_JOBS`.
pub fn run(config: &PairsVsTrainsConfig) -> PairsVsTrainsResult {
    run_with(config, &Executor::from_env())
}

/// Runs the Table 1 experiment, fanning the rows (one per cross packet
/// size, each with its own seeded scenario) across `exec`.
pub fn run_with(config: &PairsVsTrainsConfig, exec: &Executor) -> PairsVsTrainsResult {
    let truth = 25e6;
    let ct = 50e6;
    let jobs: Vec<_> = config
        .cross_sizes
        .iter()
        .map(|&lc| {
            move || {
                let mut s = Scenario::single_hop(&SingleHopConfig {
                    cross: CrossKind::Poisson,
                    cross_sizes: SizeDist::Constant(lc),
                    seed: config.seed.wrapping_add(lc as u64),
                    ..SingleHopConfig::default()
                });
                s.warm_up(SimDuration::from_millis(500));
                let mut runner = s.runner();
                runner.stream_gap = SimDuration::from_millis(3);

                // one avail-bw sample per pair, via the Equation 9 inversion
                let spec = StreamSpec::Pair {
                    rate_bps: config.pair_rate_bps,
                    size: config.probe_size,
                };
                let mut samples = Vec::with_capacity(config.pool_size);
                while samples.len() < config.pool_size {
                    let r = runner.run_stream(&mut s.sim, &spec);
                    if let Some(&(g_in, g_out)) = r.pair_gaps().first() {
                        if g_out > 0.0 {
                            let ro = config.probe_size as f64 * 8.0 / g_out;
                            let ri = config.probe_size as f64 * 8.0 / g_in;
                            samples.push(direct_probing_estimate(ct, ri, ro));
                        }
                    }
                }
                let sd = abw_stats::running::Running::from_samples(&samples).stddev();

                let errors = config
                    .sample_counts
                    .iter()
                    .map(|&k| {
                        let group_errors: Vec<f64> = samples
                            .chunks_exact(k)
                            .map(|g| {
                                let mean = g.iter().sum::<f64>() / k as f64;
                                relative_error(mean, truth).abs()
                            })
                            .collect();
                        let mean_err =
                            group_errors.iter().sum::<f64>() / group_errors.len().max(1) as f64;
                        (k, mean_err)
                    })
                    .collect();

                PairsVsTrainsRow {
                    cross_size: lc,
                    errors,
                    sample_sd_mbps: sd / 1e6,
                }
            }
        })
        .collect();
    let rows = exec.run(jobs);
    PairsVsTrainsResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_cross_packets_need_more_samples() {
        let r = run(&PairsVsTrainsConfig::quick());
        let small = &r.rows[0];
        let large = &r.rows[1];
        assert_eq!(small.cross_size, 40);
        assert_eq!(large.cross_size, 1500);

        // Table 1 row 1: with 40 B cross packets the error is ~0 even at
        // k = 10
        let small_k10 = small.errors[0].1;
        assert!(small_k10 < 0.06, "Lc=40, k=10: error {small_k10}");

        // with 1500 B cross packets the k=10 error is an order of
        // magnitude larger...
        let large_k10 = large.errors[0].1;
        assert!(
            large_k10 > small_k10 * 3.0,
            "Lc=1500 k=10 ({large_k10}) vs Lc=40 k=10 ({small_k10})"
        );
        // ...and shrinks substantially by k = 100
        let large_k100 = large.errors[1].1;
        assert!(
            large_k100 < large_k10 * 0.6,
            "k=100 ({large_k100}) should improve on k=10 ({large_k10})"
        );
        // the per-sample quantisation noise is visible directly
        assert!(large.sample_sd_mbps > small.sample_sd_mbps * 2.0);
    }
}
