//! Pitfall 6 / **Figure 3**: ignoring the effects of cross-traffic
//! burstiness.
//!
//! Under the fluid model, `Ro < Ri` iff `Ri > A`. Real queues build up
//! before the link saturates — so for bursty cross traffic, `Ro/Ri`
//! drops below 1 well before `Ri` reaches the avail-bw, which biases both
//! direct and iterative probing toward *underestimation*. Figure 3 plots
//! the mean `Ro/Ri` over 500 streams against `Ri` for CBR, Poisson and
//! Pareto ON-OFF cross traffic on the canonical 50/25 link.

use abw_netsim::SimDuration;
use abw_stats::running::Running;

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::stream::StreamSpec;

/// Configuration of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct BurstinessConfig {
    /// Cross-traffic models to compare (paper: CBR, Poisson, Pareto
    /// ON-OFF).
    pub models: Vec<CrossKind>,
    /// Input rates to sweep, bits/s (paper: 5–30 Mb/s).
    pub rates_bps: Vec<f64>,
    /// Streams averaged per point (paper: 500).
    pub streams_per_point: u32,
    /// Packets per probing stream.
    pub packets_per_stream: u32,
    /// Probing packet size, bytes.
    pub packet_size: u32,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for BurstinessConfig {
    fn default() -> Self {
        BurstinessConfig {
            models: vec![CrossKind::Cbr, CrossKind::Poisson, CrossKind::ParetoOnOff],
            rates_bps: (5..=30).step_by(2).map(|m| m as f64 * 1e6).collect(),
            streams_per_point: 500,
            packets_per_stream: 100,
            packet_size: 1500,
            seed: 0xF163,
        }
    }
}

impl BurstinessConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        BurstinessConfig {
            rates_bps: vec![10e6, 20e6, 24e6, 28e6],
            streams_per_point: 60,
            packets_per_stream: 60,
            ..BurstinessConfig::default()
        }
    }
}

/// One curve of Figure 3.
#[derive(Debug, Clone)]
pub struct BurstinessCurve {
    /// Cross-traffic model.
    pub model: CrossKind,
    /// `(Ri in Mb/s, mean Ro/Ri)` points.
    pub points: Vec<(f64, f64)>,
}

impl BurstinessCurve {
    /// The lowest probed rate at which `Ro/Ri` fell below `threshold` —
    /// the operating point an iterative tool with that threshold would
    /// report as the avail-bw.
    pub fn first_rate_below(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, ratio)| ratio < threshold)
            .map(|&(ri, _)| ri)
    }
}

/// The Figure 3 result.
#[derive(Debug, Clone)]
pub struct BurstinessResult {
    /// One curve per cross-traffic model.
    pub curves: Vec<BurstinessCurve>,
}

/// Runs the Figure 3 experiment.
pub fn run(config: &BurstinessConfig) -> BurstinessResult {
    let curves = config
        .models
        .iter()
        .map(|&model| {
            let mut s = Scenario::single_hop(&SingleHopConfig {
                cross: model,
                seed: config.seed.wrapping_add(model as u64),
                ..SingleHopConfig::default()
            });
            s.warm_up(SimDuration::from_millis(500));
            let mut runner = s.runner();
            runner.stream_gap = SimDuration::from_millis(10);
            let points = config
                .rates_bps
                .iter()
                .map(|&ri| {
                    let spec = StreamSpec::Periodic {
                        rate_bps: ri,
                        size: config.packet_size,
                        count: config.packets_per_stream,
                    };
                    let mut ratios = Running::new();
                    for _ in 0..config.streams_per_point {
                        if let Some(ratio) = runner.run_stream(&mut s.sim, &spec).rate_ratio() {
                            ratios.push(ratio.min(1.0));
                        }
                    }
                    (ri / 1e6, ratios.mean())
                })
                .collect();
            BurstinessCurve { model, points }
        })
        .collect();
    BurstinessResult { curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burstier_traffic_drops_ratio_earlier() {
        let r = run(&BurstinessConfig::quick());
        let curve = |m: CrossKind| r.curves.iter().find(|c| c.model == m).unwrap();
        let cbr = curve(CrossKind::Cbr);
        let poisson = curve(CrossKind::Poisson);
        let pareto = curve(CrossKind::ParetoOnOff);

        let at = |c: &BurstinessCurve, mbps: f64| {
            c.points
                .iter()
                .find(|p| (p.0 - mbps).abs() < 1e-9)
                .unwrap()
                .1
        };

        // CBR ≈ fluid: essentially no expansion below the avail-bw
        let cbr_at_20 = at(cbr, 20.0);
        assert!(cbr_at_20 > 0.995, "CBR Ro/Ri at 20 Mb/s: {cbr_at_20}");

        // bursty models dip below 1 before Ri reaches 25 Mb/s
        let poisson_at_24 = at(poisson, 24.0);
        assert!(
            poisson_at_24 < 0.999,
            "Poisson should expand below A: {poisson_at_24}"
        );
        let pareto_at_20 = at(pareto, 20.0);
        let poisson_at_20 = at(poisson, 20.0);
        assert!(
            pareto_at_20 <= poisson_at_20,
            "Pareto ({pareto_at_20}) should dip at least as much as Poisson \
             ({poisson_at_20}) at 20 Mb/s"
        );
    }

    #[test]
    fn ratios_decrease_with_rate() {
        let r = run(&BurstinessConfig::quick());
        for c in &r.curves {
            let first = c.points.first().unwrap().1;
            let last = c.points.last().unwrap().1;
            assert!(
                last < first || (first > 0.999 && last > 0.999),
                "{:?}: Ro/Ri should fall with Ri ({first} → {last})",
                c.model
            );
        }
    }
}
