//! Pitfall 10 / **Figure 7**: validating avail-bw estimates against bulk
//! TCP throughput.
//!
//! Bulk TCP throughput depends on socket buffers (`Wr`), RTT, loss,
//! tight-link buffering and — critically — the *congestion
//! responsiveness* of the cross traffic. Figure 7 plots the throughput
//! of a bulk transfer against the receiver window under three cross
//! traffic types on a path whose avail-bw is 15 Mb/s: unresponsive UDP
//! (Pareto interarrivals), a few window-limited persistent TCPs, and an
//! aggregate of short TCP transfers. TCP can land below *or above* the
//! avail-bw depending on the competition — so the two metrics must not
//! be conflated.

use abw_exec::Executor;
use abw_netsim::{FlowId, LinkConfig, SimDuration, SimTime, Simulator};
use abw_tcp::{ShortFlowAgent, TcpConfig, TcpSender, TcpSink};
use abw_traffic::{ParetoInterarrival, SizeDist, SourceAgent};

/// The three cross-traffic types of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossTrafficType {
    /// UDP with Pareto interarrivals — completely unresponsive.
    ParetoUdp,
    /// A few persistent TCPs limited by their advertised windows
    /// ("buffer-limited" in the figure's legend).
    WindowLimitedTcp,
    /// An aggregate of short TCP transfers ("size-limited").
    ShortTcp,
}

/// Configuration of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct TcpThroughputConfig {
    /// Bottleneck capacity, bits/s.
    pub capacity_bps: f64,
    /// Nominal cross-traffic load, bits/s (avail-bw = capacity − load).
    pub cross_rate_bps: f64,
    /// One-way propagation delay of the bottleneck.
    pub prop_delay: SimDuration,
    /// Bottleneck buffer, packets of 1500 B.
    pub buffer_packets: u64,
    /// Receiver windows to sweep, in segments (the Figure 7 x-axis).
    pub windows: Vec<u64>,
    /// Cross types to run.
    pub cross_types: Vec<CrossTrafficType>,
    /// Measurement time per point.
    pub measure: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Default for TcpThroughputConfig {
    fn default() -> Self {
        TcpThroughputConfig {
            capacity_bps: 45e6,
            cross_rate_bps: 30e6,
            prop_delay: SimDuration::from_millis(5),
            buffer_packets: 300,
            windows: vec![2, 4, 8, 16, 32, 64, 128, 256, 512],
            cross_types: vec![
                CrossTrafficType::ParetoUdp,
                CrossTrafficType::WindowLimitedTcp,
                CrossTrafficType::ShortTcp,
            ],
            measure: SimDuration::from_secs(30),
            seed: 0xF167,
        }
    }
}

impl TcpThroughputConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        TcpThroughputConfig {
            windows: vec![4, 64, 512],
            measure: SimDuration::from_secs(15),
            ..TcpThroughputConfig::default()
        }
    }

    /// The configured avail-bw, bits/s.
    pub fn avail_bps(&self) -> f64 {
        self.capacity_bps - self.cross_rate_bps
    }
}

/// One curve of Figure 7.
#[derive(Debug, Clone)]
pub struct TcpThroughputCurve {
    /// Cross-traffic type.
    pub cross: CrossTrafficType,
    /// `(Wr in segments, bulk TCP goodput in Mb/s)` points.
    pub points: Vec<(u64, f64)>,
}

impl TcpThroughputCurve {
    /// Goodput at the largest probed window, Mb/s.
    pub fn saturated_mbps(&self) -> f64 {
        self.points.last().map(|&(_, g)| g).unwrap_or(0.0)
    }

    /// Goodput at a given window, Mb/s.
    pub fn at(&self, wr: u64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == wr).map(|&(_, g)| g)
    }
}

/// The Figure 7 result.
#[derive(Debug, Clone)]
pub struct TcpThroughputResult {
    /// The configured avail-bw, Mb/s (the horizontal reference line).
    pub avail_mbps: f64,
    /// One curve per cross-traffic type.
    pub curves: Vec<TcpThroughputCurve>,
}

/// Runs one (cross type, window) cell and returns goodput in bits/s.
fn run_cell(config: &TcpThroughputConfig, cross: CrossTrafficType, wr: u64) -> f64 {
    let mut sim = Simulator::new();
    let link = sim.add_link(
        LinkConfig::new(config.capacity_bps, config.prop_delay)
            .with_queue_packets(config.buffer_packets, 1500),
    );
    let path = sim.add_path(vec![link]);
    let ack_delay = config.prop_delay;

    match cross {
        CrossTrafficType::ParetoUdp => {
            let sink = sim.add_agent(Box::new(abw_netsim::CountingSink::new()));
            sim.add_agent(Box::new(SourceAgent::new(
                Box::new(ParetoInterarrival::new(
                    config.cross_rate_bps,
                    SizeDist::Constant(1000),
                    2.2,
                    config.seed,
                )),
                path,
                sink,
                FlowId(1),
            )));
        }
        CrossTrafficType::WindowLimitedTcp => {
            // three persistent flows whose windows cap them at roughly
            // cross_rate in aggregate on the unloaded RTT
            let rtt = 2.0 * config.prop_delay.as_secs_f64();
            let per_flow = config.cross_rate_bps / 3.0;
            let wnd = ((per_flow * rtt) / (1500.0 * 8.0)).ceil().max(1.0) as u64;
            for i in 0..3 {
                let sink = sim.add_agent(Box::new(TcpSink::new(ack_delay)));
                sim.add_agent(Box::new(TcpSender::new(
                    TcpConfig::bulk(path, sink, FlowId(10 + i))
                        .with_rwnd(wnd)
                        .with_start_after(SimDuration::from_millis(37 * i as u64)),
                )));
            }
        }
        CrossTrafficType::ShortTcp => {
            // a pool of mice sized to offer roughly cross_rate when idle
            let flows = 24u64;
            let segs = 20u64;
            let rtt = 2.0 * config.prop_delay.as_secs_f64();
            // rough per-transfer time at slow-start pace: ~4 RTTs
            let per_transfer_secs = 4.0 * rtt;
            let per_flow_target = config.cross_rate_bps / flows as f64;
            let bits_per_transfer = segs as f64 * 1500.0 * 8.0;
            let cycle = bits_per_transfer / per_flow_target;
            let think = (cycle - per_transfer_secs).max(0.01);
            for i in 0..flows {
                let sink = sim.add_agent(Box::new(TcpSink::new(ack_delay)));
                sim.add_agent(Box::new(ShortFlowAgent::new(
                    path,
                    sink,
                    FlowId(100 + i as u32),
                    segs,
                    SimDuration::from_secs_f64(think),
                    config.seed.wrapping_add(i),
                )));
            }
        }
    }

    // warm the cross traffic, then start the bulk transfer
    let warmup = SimDuration::from_secs(2);
    let bulk_sink = sim.add_agent(Box::new(TcpSink::new(ack_delay)));
    let bulk = sim.add_agent(Box::new(TcpSender::new(
        TcpConfig::bulk(path, bulk_sink, FlowId(999))
            .with_rwnd(wr)
            .with_start_after(warmup),
    )));
    sim.run_until(SimTime::ZERO + warmup + config.measure);
    sim.agent::<TcpSender>(bulk)
        .goodput_bps(SimTime::ZERO + warmup + config.measure)
}

/// Runs the Figure 7 experiment with the executor configured from
/// `ABW_JOBS`.
pub fn run(config: &TcpThroughputConfig) -> TcpThroughputResult {
    run_with(config, &Executor::from_env())
}

/// Runs the Figure 7 experiment, fanning the independent
/// `(cross type, window)` cells across `exec`.
pub fn run_with(config: &TcpThroughputConfig, exec: &Executor) -> TcpThroughputResult {
    let jobs: Vec<_> = config
        .cross_types
        .iter()
        .flat_map(|&cross| {
            config
                .windows
                .iter()
                .map(move |&wr| move || run_cell(config, cross, wr))
        })
        .collect();
    let goodputs = exec.run(jobs);

    let curves = config
        .cross_types
        .iter()
        .zip(goodputs.chunks(config.windows.len()))
        .map(|(&cross, chunk)| TcpThroughputCurve {
            cross,
            points: config
                .windows
                .iter()
                .zip(chunk)
                .map(|(&wr, &bps)| (wr, bps / 1e6))
                .collect(),
        })
        .collect();
    TcpThroughputResult {
        avail_mbps: config.avail_bps() / 1e6,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> TcpThroughputResult {
        run(&TcpThroughputConfig::quick())
    }

    #[test]
    fn small_windows_underutilise_everywhere() {
        let r = result();
        // Wr = 4: throughput ≈ 4*1500*8/40ms = 1.2 Mb/s « avail-bw
        for c in &r.curves {
            let g = c.at(4).unwrap();
            assert!(g < r.avail_mbps * 0.5, "{:?}: Wr=4 gives {g} Mb/s", c.cross);
        }
    }

    #[test]
    fn unresponsive_cross_caps_tcp_near_the_avail_bw() {
        let r = result();
        let udp = r
            .curves
            .iter()
            .find(|c| c.cross == CrossTrafficType::ParetoUdp)
            .unwrap();
        let g = udp.saturated_mbps();
        // TCP against unresponsive cross traffic saturates in the
        // vicinity of the avail-bw (it cannot push the UDP away)
        assert!(
            g < r.avail_mbps * 1.35,
            "UDP cross: TCP got {g} vs avail {}",
            r.avail_mbps
        );
        assert!(g > r.avail_mbps * 0.35, "UDP cross: TCP collapsed to {g}");
    }

    #[test]
    fn responsive_cross_lets_tcp_exceed_the_avail_bw() {
        let r = result();
        let tcp_cross = r
            .curves
            .iter()
            .find(|c| c.cross == CrossTrafficType::WindowLimitedTcp)
            .unwrap();
        let g = tcp_cross.saturated_mbps();
        // window-limited competitors back off (their queueing delay
        // grows, their fixed windows cap them), so the bulk flow takes
        // more than the nominal avail-bw — the paper's key point
        assert!(
            g > r.avail_mbps * 1.2,
            "responsive cross: TCP got {g} vs avail {}",
            r.avail_mbps
        );
    }

    #[test]
    fn throughput_grows_with_window_until_saturation() {
        let r = result();
        for c in &r.curves {
            let small = c.at(4).unwrap();
            let large = c.saturated_mbps();
            assert!(
                large > small,
                "{:?}: no growth with Wr ({small} → {large})",
                c.cross
            );
        }
    }
}
