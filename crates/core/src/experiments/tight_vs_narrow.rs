//! Pitfall 5: estimating the tight-link capacity with end-to-end
//! capacity estimation tools.
//!
//! Direct probing needs the capacity `Ct` of the *tight* link (minimum
//! avail-bw). End-to-end capacity tools, however, measure the *narrow*
//! link (minimum capacity) — `Cn` can be well below `Ct`, as when a Fast
//! Ethernet interface precedes a loaded OC-3. This experiment builds that
//! path, estimates capacity with the bprobe-style prober, and shows that
//! direct probing fed the measured `Cn` underestimates the avail-bw while
//! the true `Ct` recovers it.

use abw_netsim::SimDuration;

use crate::scenario::Scenario;
use crate::tools::capacity::{CapacityConfig, CapacityProber};
use crate::tools::direct::{DirectConfig, DirectProber};

/// Configuration of the Pitfall 5 experiment.
#[derive(Debug, Clone)]
pub struct TightVsNarrowConfig {
    /// Cross traffic on the OC-3 tight link, bits/s. The default
    /// 100 Mb/s leaves 55.5 Mb/s available — well below the idle narrow
    /// link's 100 Mb/s, so tight ≠ narrow and the `Ct`-vs-`Cn` bias is
    /// large.
    pub oc3_cross_bps: f64,
    /// Input rate of the direct-probing streams (must exceed the
    /// avail-bw; the narrow link caps it at 100 Mb/s).
    pub probe_rate_bps: f64,
    /// Direct-probing streams per estimate.
    pub streams: u32,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for TightVsNarrowConfig {
    fn default() -> Self {
        TightVsNarrowConfig {
            oc3_cross_bps: 100e6,
            probe_rate_bps: 80e6,
            streams: 60,
            seed: 0xF165,
        }
    }
}

impl TightVsNarrowConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        TightVsNarrowConfig {
            streams: 25,
            ..TightVsNarrowConfig::default()
        }
    }
}

/// The Pitfall 5 result.
#[derive(Debug, Clone)]
pub struct TightVsNarrowResult {
    /// True tight-link capacity, Mb/s.
    pub true_ct_mbps: f64,
    /// True narrow-link capacity, Mb/s.
    pub true_cn_mbps: f64,
    /// True path avail-bw, Mb/s.
    pub true_avail_mbps: f64,
    /// What the capacity tool measured, Mb/s (≤ `Cn`, never `Ct`).
    pub measured_capacity_mbps: f64,
    /// Direct-probing avail-bw using the narrow capacity `Cn` — the
    /// answer a perfect end-to-end capacity tool would supply, Mb/s.
    pub avail_with_cn_mbps: f64,
    /// Direct-probing avail-bw using the true `Ct`, Mb/s.
    pub avail_with_true_ct_mbps: f64,
}

/// Runs the Pitfall 5 experiment.
pub fn run(config: &TightVsNarrowConfig) -> TightVsNarrowResult {
    let mut s = Scenario::tight_not_narrow(config.oc3_cross_bps, config.seed);
    s.warm_up(SimDuration::from_millis(500));
    let true_ct = s.tight_capacity_bps();
    let true_cn = s.narrow_capacity_bps();
    let true_avail = s.configured_avail_bps();

    let mut runner = s.runner();
    let cap = CapacityProber::new(CapacityConfig::default()).run(&mut s.sim, &mut runner);

    // probe well above the avail-bw so Equation 9 applies on this path
    let probing = |ct: f64, s: &mut Scenario, runner: &mut crate::probe::ProbeRunner| {
        DirectProber::new(DirectConfig {
            tight_capacity_bps: ct,
            input_rate_bps: config.probe_rate_bps,
            packet_size: 1500,
            stream_duration: SimDuration::from_millis(100),
            streams: config.streams,
        })
        .run(&mut s.sim, runner)
    };
    // even a perfect capacity tool only gives Cn: compare the two inputs
    let with_cn = probing(true_cn, &mut s, &mut runner);
    let with_true_ct = probing(true_ct, &mut s, &mut runner);

    TightVsNarrowResult {
        true_ct_mbps: true_ct / 1e6,
        true_cn_mbps: true_cn / 1e6,
        true_avail_mbps: true_avail / 1e6,
        measured_capacity_mbps: cap.capacity_bps / 1e6,
        avail_with_cn_mbps: with_cn.avail_bps / 1e6,
        avail_with_true_ct_mbps: with_true_ct.avail_bps / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_tool_never_reports_the_tight_capacity() {
        let r = run(&TightVsNarrowConfig::quick());
        // under heavy OC-3 load the dispersion mode sits at or below the
        // narrow capacity; the point is it is nowhere near Ct
        assert!(
            r.measured_capacity_mbps < r.true_ct_mbps * 0.8,
            "measured {:.1} vs Ct {:.1}",
            r.measured_capacity_mbps,
            r.true_ct_mbps
        );
        assert!(
            r.measured_capacity_mbps <= r.true_cn_mbps * 1.1,
            "measured {:.1} should not exceed Cn {:.1}",
            r.measured_capacity_mbps,
            r.true_cn_mbps
        );
    }

    #[test]
    fn wrong_capacity_biases_direct_probing() {
        let r = run(&TightVsNarrowConfig::quick());
        let err_wrong = (r.avail_with_cn_mbps - r.true_avail_mbps).abs();
        let err_right = (r.avail_with_true_ct_mbps - r.true_avail_mbps).abs();
        assert!(
            err_wrong > err_right + 4.0,
            "using Cn must be visibly worse: wrong err {:.1}, right err {:.1} \
             (truth {:.1}, wrong {:.1}, right {:.1})",
            err_wrong,
            err_right,
            r.true_avail_mbps,
            r.avail_with_cn_mbps,
            r.avail_with_true_ct_mbps
        );
    }
}
