//! Pitfall 2 / **Figure 2**: the probing stream duration controls the
//! averaging timescale.
//!
//! Direct probing with streams of duration `d` samples the avail-bw
//! process at timescale `tau = d`: the standard deviation of the
//! per-stream estimates must match the *population* standard deviation
//! of `A_d(t)` computed from the link's busy-period ground truth. The
//! paper's Figure 2 shows the two curves nearly coincide across stream
//! durations of 25–200 ms.

use abw_netsim::SimDuration;

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::tools::direct::{DirectConfig, DirectProber};

/// Configuration of the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct TimescaleConfig {
    /// Stream durations in ms (paper: 25, 50, 100, 150, 200).
    pub durations_ms: Vec<u64>,
    /// Streams (= samples) per duration (paper: 100).
    pub streams: u32,
    /// Input probing rate (paper: 40 Mb/s on the 50/25 link).
    pub input_rate_bps: f64,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for TimescaleConfig {
    fn default() -> Self {
        TimescaleConfig {
            durations_ms: vec![25, 50, 100, 150, 200],
            streams: 100,
            input_rate_bps: 40e6,
            seed: 0xF162,
        }
    }
}

impl TimescaleConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        TimescaleConfig {
            durations_ms: vec![25, 100, 200],
            streams: 40,
            ..TimescaleConfig::default()
        }
    }
}

/// One row of Figure 2.
#[derive(Debug, Clone, Copy)]
pub struct TimescaleRow {
    /// Stream duration = averaging timescale, ms.
    pub duration_ms: u64,
    /// Standard deviation of the direct-probing samples, Mb/s.
    pub sample_sd_mbps: f64,
    /// Population standard deviation of `A_tau` from the busy-period
    /// ground truth at the same timescale, Mb/s.
    pub population_sd_mbps: f64,
    /// Mean of the probing samples, Mb/s.
    pub sample_mean_mbps: f64,
}

/// The Figure 2 result.
#[derive(Debug, Clone)]
pub struct TimescaleResult {
    /// One row per stream duration.
    pub rows: Vec<TimescaleRow>,
}

/// Runs the Figure 2 experiment: for each stream duration, collect
/// direct-probing samples on a fresh Poisson-loaded 50/25 link, then
/// compare against the population statistics from the same run's busy
/// log.
pub fn run(config: &TimescaleConfig) -> TimescaleResult {
    let rows = config
        .durations_ms
        .iter()
        .map(|&ms| {
            // a fresh scenario per duration keeps runs independent
            let mut s = Scenario::single_hop(&SingleHopConfig {
                cross: CrossKind::Poisson,
                seed: config.seed.wrapping_add(ms),
                ..SingleHopConfig::default()
            });
            s.warm_up(SimDuration::from_millis(500));
            let mut runner = s.runner();
            let prober = DirectProber::new(DirectConfig {
                tight_capacity_bps: 50e6,
                input_rate_bps: config.input_rate_bps,
                packet_size: 1500,
                stream_duration: SimDuration::from_millis(ms),
                streams: config.streams,
            });
            let samples = prober.collect_samples(&mut s.sim, &mut runner);
            let sample_stats = abw_stats::running::Running::from_samples(&samples);

            // Population statistics at the same timescale. The probing
            // itself perturbs the link, so exclude the probe's own load:
            // ground truth comes from a probe-free replica of the run.
            let mut replica = Scenario::single_hop(&SingleHopConfig {
                cross: CrossKind::Poisson,
                seed: config.seed.wrapping_add(ms),
                ..SingleHopConfig::default()
            });
            replica.warm_up(SimDuration::from_millis(500));
            replica.sim.run_for(SimDuration::from_secs(20));
            let population = replica.ground_truth(0).population(ms * 1_000_000);

            TimescaleRow {
                duration_ms: ms,
                sample_sd_mbps: sample_stats.stddev() / 1e6,
                population_sd_mbps: population.stddev() / 1e6,
                sample_mean_mbps: sample_stats.mean() / 1e6,
            }
        })
        .collect();
    TimescaleResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_sd_tracks_population_sd() {
        let result = run(&TimescaleConfig::quick());
        for row in &result.rows {
            // Figure 2: the two standard deviations nearly coincide
            let ratio = row.sample_sd_mbps / row.population_sd_mbps;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{} ms: sample sd {:.2} vs population sd {:.2}",
                row.duration_ms,
                row.sample_sd_mbps,
                row.population_sd_mbps
            );
            // unbiased around the true 25 Mb/s
            assert!(
                (row.sample_mean_mbps - 25.0).abs() < 3.0,
                "{} ms: mean {:.2}",
                row.duration_ms,
                row.sample_mean_mbps
            );
        }
    }

    #[test]
    fn sd_decreases_with_duration() {
        let result = run(&TimescaleConfig::quick());
        let first = result.rows.first().unwrap();
        let last = result.rows.last().unwrap();
        assert!(
            first.population_sd_mbps > last.population_sd_mbps,
            "population SD should fall with tau: {:?}",
            result.rows
        );
        assert!(
            first.sample_sd_mbps > last.sample_sd_mbps,
            "sample SD should fall with stream duration: {:?}",
            result.rows
        );
    }
}
