//! Fallacy 8 / **Figure 5**: increasing one-way delays are equivalent to
//! `Ro < Ri`.
//!
//! Only under the fluid model. With real cross traffic the OWD time
//! series carries far more information than the single number `Ro/Ri`: a
//! single cross-traffic burst near the end of a stream can push `Ro`
//! below `Ri` even though `Ri < A`, while trend analysis of the same
//! OWDs correctly reports *no trend*. The experiment reproduces
//! Figure 5's two 160-packet streams and quantifies, over many streams,
//! how often each inference rule gets the `Ri ≷ A` question wrong.

use abw_netsim::SimDuration;
use abw_stats::trend::{TrendAnalyzer, TrendVerdict};

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::stream::StreamSpec;

/// Configuration of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct OwdVsRateConfig {
    /// Rate above the avail-bw (paper: 27 Mb/s).
    pub rate_above_bps: f64,
    /// Rate below the avail-bw (paper: 19 Mb/s).
    pub rate_below_bps: f64,
    /// Packets per stream (paper: 160).
    pub packets_per_stream: u32,
    /// Streams per rate for the error-rate statistics.
    pub streams: u32,
    /// `Ro/Ri` below `1 - tolerance` counts as "rate test says above".
    pub rate_tolerance: f64,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for OwdVsRateConfig {
    fn default() -> Self {
        OwdVsRateConfig {
            rate_above_bps: 27e6,
            rate_below_bps: 19e6,
            packets_per_stream: 160,
            streams: 200,
            rate_tolerance: 0.02,
            seed: 0xF165,
        }
    }
}

impl OwdVsRateConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        OwdVsRateConfig {
            streams: 60,
            ..OwdVsRateConfig::default()
        }
    }
}

/// One stream selected for plotting (a Figure 5 time series).
#[derive(Debug, Clone)]
pub struct OwdSeries {
    /// Input rate, Mb/s.
    pub ri_mbps: f64,
    /// Output rate, Mb/s.
    pub ro_mbps: f64,
    /// Relative OWDs (seconds, min-shifted), per packet.
    pub owds: Vec<f64>,
    /// What the trend test said.
    pub trend: TrendVerdict,
}

/// Inference error rates of the two rules over many streams at one rate.
#[derive(Debug, Clone, Copy)]
pub struct InferenceStats {
    /// Input rate, Mb/s.
    pub ri_mbps: f64,
    /// Whether this rate is truly above the avail-bw.
    pub truly_above: bool,
    /// Fraction of streams where `Ro/Ri < 1 - tol` (rate rule ⇒ above).
    pub rate_rule_says_above: f64,
    /// Fraction of streams the trend test classified Increasing.
    pub trend_says_above: f64,
    /// Fraction of streams the trend test left Ambiguous.
    pub trend_ambiguous: f64,
}

/// The Figure 5 result.
#[derive(Debug, Clone)]
pub struct OwdVsRateResult {
    /// A stream at `rate_above` with a clear increasing trend.
    pub series_above: OwdSeries,
    /// A stream at `rate_below` whose `Ro < Ri` despite `Ri < A`
    /// (the fallacy's counterexample), when one was observed.
    pub series_below_misleading: Option<OwdSeries>,
    /// Any stream at `rate_below` (fallback for plotting).
    pub series_below: OwdSeries,
    /// Error statistics at both rates.
    pub stats: Vec<InferenceStats>,
}

/// Runs the Figure 5 experiment on Pareto ON-OFF cross traffic (bursts
/// are what make the counterexample common).
pub fn run(config: &OwdVsRateConfig) -> OwdVsRateResult {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::ParetoOnOff,
        seed: config.seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    let mut runner = s.runner();
    runner.stream_gap = SimDuration::from_millis(20);
    let analyzer = TrendAnalyzer::default();

    let mut collect = |rate: f64, truly_above: bool| {
        let spec = StreamSpec::Periodic {
            rate_bps: rate,
            size: 1500,
            count: config.packets_per_stream,
        };
        let mut rate_above = 0u32;
        let mut trend_above = 0u32;
        let mut ambiguous = 0u32;
        let mut sample: Option<OwdSeries> = None;
        let mut misleading: Option<OwdSeries> = None;
        for _ in 0..config.streams {
            let r = runner.run_stream(&mut s.sim, &spec);
            let Some(ratio) = r.rate_ratio() else {
                continue;
            };
            let verdict = analyzer.classify(&r.owds());
            let expanded = ratio < 1.0 - config.rate_tolerance;
            if expanded {
                rate_above += 1;
            }
            match verdict {
                TrendVerdict::Increasing => trend_above += 1,
                TrendVerdict::Ambiguous => ambiguous += 1,
                TrendVerdict::NoTrend => {}
            }
            let series = || OwdSeries {
                ri_mbps: rate / 1e6,
                ro_mbps: r.output_rate_bps().unwrap_or(0.0) / 1e6,
                owds: r.relative_owds(),
                trend: verdict,
            };
            if sample.is_none() {
                sample = Some(series());
            }
            // the Figure 5 counterexample: Ro < Ri while the trend test
            // (correctly) sees no increasing trend
            if !truly_above && expanded && verdict == TrendVerdict::NoTrend && misleading.is_none()
            {
                misleading = Some(series());
            }
            // prefer a clearly-increasing example for the "above" series
            if truly_above && verdict == TrendVerdict::Increasing {
                sample = Some(series());
            }
        }
        let n = config.streams as f64;
        (
            sample.expect("at least one stream completed"),
            misleading,
            InferenceStats {
                ri_mbps: rate / 1e6,
                truly_above,
                rate_rule_says_above: rate_above as f64 / n,
                trend_says_above: trend_above as f64 / n,
                trend_ambiguous: ambiguous as f64 / n,
            },
        )
    };

    let (series_above, _, stats_above) = collect(config.rate_above_bps, true);
    let (series_below, misleading, stats_below) = collect(config.rate_below_bps, false);

    OwdVsRateResult {
        series_above,
        series_below_misleading: misleading,
        series_below,
        stats: vec![stats_above, stats_below],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_test_is_more_robust_than_rate_test_below_a() {
        let r = run(&OwdVsRateConfig::quick());
        let below = r.stats[1];
        assert!(!below.truly_above);
        // the trend test must rarely claim "above" below the avail-bw;
        // the rate test fires false positives on bursts
        assert!(
            below.trend_says_above <= below.rate_rule_says_above + 0.02,
            "trend FP {} vs rate FP {}",
            below.trend_says_above,
            below.rate_rule_says_above
        );
        assert!(
            below.trend_says_above < 0.25,
            "trend false-positive rate {}",
            below.trend_says_above
        );
    }

    #[test]
    fn above_rate_is_detected_by_both() {
        let r = run(&OwdVsRateConfig::quick());
        let above = r.stats[0];
        assert!(above.truly_above);
        assert!(
            above.trend_says_above > 0.5,
            "trend detection rate {}",
            above.trend_says_above
        );
        assert!(
            above.rate_rule_says_above > 0.5,
            "rate detection rate {}",
            above.rate_rule_says_above
        );
        assert_eq!(r.series_above.trend, TrendVerdict::Increasing);
    }

    #[test]
    fn series_have_the_right_length() {
        let r = run(&OwdVsRateConfig::quick());
        assert_eq!(r.series_above.owds.len(), 160);
        assert_eq!(r.series_below.owds.len(), 160);
    }
}
