//! How injected packet loss distorts every tool's estimate.
//!
//! The paper's pitfalls assume probe streams survive the path intact;
//! real paths lose packets, and each tool reacts differently — some
//! discard the stream and retry (paying convergence cost), some fold
//! the gap into a rate and bias low. This experiment sweeps an i.i.d.
//! ingress loss rate over the single-hop scenario and reports, per
//! (tool, loss-rate) cell, the mean estimate, its signed bias against
//! the analytic truth, the across-seed spread, and the convergence
//! cost in probe packets and simulated seconds.
//!
//! Unlike the shootout this sweep is registry-driven over *all* tools,
//! capacity prober included: loss corrupts a capacity estimate just as
//! much as an avail-bw one, so each tool's bias is computed against its
//! own target (link capacity for `capacity`, avail-bw for the rest).
//!
//! Truth under loss: impairment loss is applied at link ingress to
//! every flow, cross traffic included, so a loss rate `p` thins the
//! offered cross load to `(1 - p)` of its configured rate and the true
//! avail-bw *rises* to `C - (1 - p) * R_cross`. The bias column uses
//! that corrected truth — without it a perfectly loss-tolerant tool
//! would appear biased high at 5% loss.

use abw_exec::Executor;
use abw_netsim::{ImpairmentConfig, SimDuration};
use abw_stats::running::Running;

use crate::scenario::{CrossKind, Scenario, SingleHopConfig};
use crate::tools::registry::{self, ToolConfig, ToolEntry};

/// Configuration of the loss sweep.
#[derive(Debug, Clone)]
pub struct LossSweepConfig {
    /// Injected i.i.d. loss probabilities to sweep (0 ⇒ pristine link).
    pub loss_rates: Vec<f64>,
    /// Cross-traffic model all tools face.
    pub cross: CrossKind,
    /// Independent repetitions (seeds) per (tool, loss) cell.
    pub seeds: Vec<u64>,
    /// Use quick tool settings (for tests and CI).
    pub quick: bool,
}

impl Default for LossSweepConfig {
    fn default() -> Self {
        LossSweepConfig {
            loss_rates: vec![0.0, 0.001, 0.01, 0.05],
            cross: CrossKind::Poisson,
            seeds: vec![11, 22, 33],
            quick: false,
        }
    }
}

impl LossSweepConfig {
    /// Scaled-down configuration for tests: every loss rate is kept
    /// (the sweep *is* the experiment) but only one seed runs and the
    /// tools use their quick settings.
    pub fn quick() -> Self {
        LossSweepConfig {
            seeds: vec![11],
            quick: true,
            ..LossSweepConfig::default()
        }
    }
}

/// Aggregate result of one (tool, loss-rate) cell across the seeds.
#[derive(Debug, Clone)]
pub struct LossSweepRow {
    /// Tool name.
    pub tool: &'static str,
    /// Injected i.i.d. loss probability.
    pub loss: f64,
    /// The tool's own target at this loss rate, Mb/s (link capacity
    /// for the capacity prober, thinned avail-bw for everything else).
    pub truth_mbps: f64,
    /// Mean estimate across seeds, Mb/s.
    pub mean_mbps: f64,
    /// Signed bias vs `truth_mbps`, Mb/s.
    pub bias_mbps: f64,
    /// Across-seed standard deviation, Mb/s.
    pub sd_mbps: f64,
    /// Mean probing packets per estimate (convergence cost).
    pub mean_packets: f64,
    /// Mean simulated latency per estimate, seconds.
    pub mean_latency_secs: f64,
}

/// The loss-sweep result.
#[derive(Debug, Clone)]
pub struct LossSweepResult {
    /// One row per (tool, loss rate), tool-major in registry order.
    pub rows: Vec<LossSweepRow>,
}

fn fresh(cross: CrossKind, seed: u64, loss: f64) -> Scenario {
    let impairment = (loss > 0.0).then(|| ImpairmentConfig::iid_loss(loss));
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross,
        seed,
        impairment,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

/// The per-tool truth at loss rate `p`: ingress loss thins cross
/// traffic to `(1 - p)` of its offered rate, so the true avail-bw
/// rises with `p`; the capacity prober's target is the (unimpaired)
/// link capacity regardless of loss.
fn truth_bps(tool: &str, cfg: &SingleHopConfig, p: f64) -> f64 {
    if tool == "capacity" {
        cfg.capacity_bps
    } else {
        cfg.capacity_bps - (1.0 - p) * cfg.cross_rate_bps
    }
}

/// Runs the sweep with the executor configured from `ABW_JOBS`.
pub fn run(config: &LossSweepConfig) -> LossSweepResult {
    run_with(config, &Executor::from_env())
}

/// Runs the sweep, fanning the independent `(tool, loss, seed)` cells
/// across `exec`. Cells are aggregated in submission order, so the
/// table is byte-identical for any worker count.
pub fn run_with(config: &LossSweepConfig, exec: &Executor) -> LossSweepResult {
    let tools: Vec<&'static ToolEntry> = registry::all().iter().collect();
    let tool_config = ToolConfig {
        quick: config.quick,
        ..ToolConfig::default()
    };
    let hop_defaults = SingleHopConfig::default();

    let cross = config.cross;
    let jobs: Vec<_> = tools
        .iter()
        .flat_map(|&entry| {
            let tool_config = tool_config.clone();
            let loss_rates = config.loss_rates.clone();
            let seeds = config.seeds.clone();
            loss_rates.into_iter().flat_map(move |loss| {
                let tool_config = tool_config.clone();
                seeds.clone().into_iter().map(move |seed| {
                    let tool_config = tool_config.clone();
                    move || {
                        let mut s = fresh(cross, seed, loss);
                        let mut tool = entry.build(&tool_config);
                        let mut session = s.session();
                        let verdict = session.drive(&mut s.sim, tool.as_mut());
                        (
                            verdict.avail_bps(),
                            verdict.probe_packets(),
                            verdict.elapsed_secs(),
                        )
                    }
                })
            })
        })
        .collect();
    let cells = exec.run(jobs);

    // Fold per-seed cells into per-(tool, loss) rows in submission
    // order — Running's incremental moments depend on push order, so
    // this reproduces the serial loop exactly.
    let seeds_per_cell = config.seeds.len();
    let rows = tools
        .iter()
        .flat_map(|&entry| config.loss_rates.iter().map(move |&loss| (entry, loss)))
        .zip(cells.chunks(seeds_per_cell))
        .map(|((entry, loss), chunk)| {
            let mut estimates = Running::new();
            let mut packets = Running::new();
            let mut latency = Running::new();
            for &(est, pkts, secs) in chunk {
                estimates.push(est);
                packets.push(pkts as f64);
                latency.push(secs);
            }
            let truth = truth_bps(entry.name, &hop_defaults, loss);
            LossSweepRow {
                tool: entry.name,
                loss,
                truth_mbps: truth / 1e6,
                mean_mbps: estimates.mean() / 1e6,
                bias_mbps: (estimates.mean() - truth) / 1e6,
                sd_mbps: estimates.stddev() / 1e6,
                mean_packets: packets.mean(),
                mean_latency_secs: latency.mean(),
            }
        })
        .collect();

    LossSweepResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LossSweepConfig {
        LossSweepConfig {
            loss_rates: vec![0.0, 0.05],
            seeds: vec![11],
            quick: true,
            ..LossSweepConfig::default()
        }
    }

    #[test]
    fn sweep_covers_every_registry_tool_at_every_loss_rate() {
        let config = tiny();
        let r = run(&config);
        assert_eq!(
            r.rows.len(),
            registry::all().len() * config.loss_rates.len()
        );
        for entry in registry::all() {
            let tool_rows: Vec<_> = r.rows.iter().filter(|x| x.tool == entry.name).collect();
            assert_eq!(tool_rows.len(), config.loss_rates.len(), "{}", entry.name);
            for row in tool_rows {
                assert!(row.mean_packets > 0.0, "{}: no packets", row.tool);
            }
        }
    }

    #[test]
    fn zero_loss_column_matches_the_pristine_scenario() {
        // The p = 0 column must not install an impairment at all, so
        // its cells reproduce the unimpaired scenario bit-for-bit.
        let s = fresh(CrossKind::Poisson, 11, 0.0);
        assert!(s.sim.total_impaired() == 0);
        for (i, hop) in s.hops.iter().enumerate() {
            assert!(hop.impairment.is_none(), "hop {i} gained an impairment");
        }
    }

    #[test]
    fn truth_rises_as_loss_thins_cross_traffic() {
        let cfg = SingleHopConfig::default();
        let t0 = truth_bps("pathload", &cfg, 0.0);
        let t5 = truth_bps("pathload", &cfg, 0.05);
        assert!((t0 - 25e6).abs() < 1.0);
        assert!((t5 - 26.25e6).abs() < 1.0);
        // The capacity prober's target ignores loss entirely.
        assert!((truth_bps("capacity", &cfg, 0.05) - 50e6).abs() < 1.0);
    }
}
