//! Fallacy 9 / **Figure 6**: iterative probing converges to a single
//! avail-bw estimate.
//!
//! It converges to a *range*: while the iteration runs, the process
//! `A_tau(t)` moves, so a rate can be above the avail-bw at one instant
//! and below it at another. The experiment extracts the 10 ms sample path
//! of the synthetic NLANR-substitute trace (Figure 6's plot), then runs
//! Pathload against a live link carrying the same traffic and checks that
//! the reported range `(R_L, R_H)` sits inside the sample path's
//! variation — not at a single point.

use abw_netsim::{LinkConfig, SimDuration, Simulator};
use abw_stats::ecdf::Ecdf;
use abw_trace::{spawn_trace_sources, AvailBw, SyntheticTrace, SyntheticTraceConfig};

use crate::probe::{ProbeReceiver, ProbeRunner, ProbeSender, Session};
use crate::tools::pathload::{Pathload, PathloadConfig};
use crate::tools::Verdict;

/// Configuration of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct VariationRangeConfig {
    /// The trace/traffic parameters (NLANR substitute by default).
    pub trace: SyntheticTraceConfig,
    /// Sample-path averaging timescale, ns (paper: 10 ms).
    pub tau_ns: u64,
    /// Sample-path length to report, seconds (paper plots 20 s).
    pub plot_secs: f64,
    /// Pathload settings for the live measurement.
    pub pathload: PathloadConfig,
}

impl Default for VariationRangeConfig {
    fn default() -> Self {
        VariationRangeConfig {
            trace: SyntheticTraceConfig::default(),
            tau_ns: 10_000_000,
            plot_secs: 20.0,
            pathload: PathloadConfig {
                min_rate_bps: 20e6,
                max_rate_bps: 150e6,
                resolution_bps: 8e6,
                ..PathloadConfig::default()
            },
        }
    }
}

impl VariationRangeConfig {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        VariationRangeConfig {
            trace: SyntheticTraceConfig {
                duration: SimDuration::from_secs(10),
                warmup: SimDuration::from_secs(1),
                ..SyntheticTraceConfig::default()
            },
            plot_secs: 10.0,
            pathload: PathloadConfig {
                min_rate_bps: 20e6,
                max_rate_bps: 150e6,
                resolution_bps: 10e6,
                streams_per_fleet: 6,
                packets_per_stream: 60,
                ..PathloadConfig::default()
            },
            ..VariationRangeConfig::default()
        }
    }
}

/// The Figure 6 result.
#[derive(Debug)]
pub struct VariationRangeResult {
    /// `(t seconds, A_tau(t) in Mb/s)` sample path.
    pub sample_path: Vec<(f64, f64)>,
    /// Mean avail-bw of the trace, Mb/s.
    pub mean_mbps: f64,
    /// 5th and 95th percentile of `A_tau`, Mb/s — the "true" variation
    /// range the paper describes (60–110 Mb/s on the NLANR trace).
    pub true_range_mbps: (f64, f64),
    /// Pathload's reported range `(R_L, R_H)` on the live link, Mb/s.
    pub pathload_range_mbps: (f64, f64),
}

/// Runs the Figure 6 experiment.
pub fn run(config: &VariationRangeConfig) -> VariationRangeResult {
    // (a) the passive view: the trace's 10 ms sample path
    let trace = SyntheticTrace::generate(&config.trace);
    let full_path = trace.process.sample_path(config.tau_ns, config.tau_ns);
    let sample_path: Vec<(f64, f64)> = full_path
        .iter()
        .take_while(|(t, _)| *t <= config.plot_secs)
        .map(|&(t, a)| (t, a / 1e6))
        .collect();
    let values = Ecdf::new(full_path.iter().map(|&(_, a)| a / 1e6).collect());
    let true_range = (
        values.quantile(0.05).expect("non-empty path"),
        values.quantile(0.95).expect("non-empty path"),
    );

    // (b) the active view: Pathload against a live link with identical
    // traffic
    let mut sim = Simulator::new();
    let link = sim.add_link(LinkConfig::new(
        config.trace.capacity_bps,
        SimDuration::ZERO,
    ));
    let path = sim.add_path(vec![link]);
    let sink = sim.add_agent(Box::new(abw_netsim::CountingSink::new()));
    spawn_trace_sources(&mut sim, path, sink, &config.trace);
    let receiver = sim.add_agent(Box::new(ProbeReceiver::new()));
    let sender = sim.add_agent(Box::new(ProbeSender::new(
        path,
        receiver,
        abw_netsim::FlowId(u32::MAX),
    )));
    sim.run_for(config.trace.warmup);
    let mut runner = ProbeRunner::new(sender, receiver);
    let mut tool = Pathload::new(config.pathload.clone()).estimator();
    let report = match Session::over(&mut runner).drive(&mut sim, &mut tool) {
        Verdict::Pathload(r) => r,
        _ => unreachable!("Pathload yields a Pathload report"),
    };

    // keep the ground truth honest: the probed link's actual mean
    let live = AvailBw::from_link(
        sim.link(link),
        abw_netsim::SimTime::ZERO + config.trace.warmup,
        sim.now(),
    );

    VariationRangeResult {
        sample_path,
        mean_mbps: live.mean() / 1e6,
        true_range_mbps: true_range,
        pathload_range_mbps: (report.range_bps.0 / 1e6, report.range_bps.1 / 1e6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathload_reports_a_range_not_a_point() {
        let r = run(&VariationRangeConfig::quick());
        let (lo, hi) = r.pathload_range_mbps;
        assert!(hi > lo, "degenerate range {lo}..{hi}");
        // Fallacy 9: the width is substantial, not a measurement epsilon
        assert!(hi - lo >= 5.0, "range suspiciously tight: {lo}..{hi}");
    }

    #[test]
    fn ranges_overlap_the_true_variation() {
        let r = run(&VariationRangeConfig::quick());
        let (tl, th) = r.true_range_mbps;
        let (pl, ph) = r.pathload_range_mbps;
        assert!(tl < th);
        // the two ranges must overlap (both describe A_tau's variation)
        assert!(
            pl < th && ph > tl,
            "no overlap: pathload {pl}..{ph} vs true {tl}..{th}"
        );
        // and the true mean sits inside the true range
        assert!((tl..=th).contains(&r.mean_mbps));
    }

    #[test]
    fn sample_path_varies_like_figure_6() {
        let r = run(&VariationRangeConfig::quick());
        assert!(r.sample_path.len() > 500);
        let (tl, th) = r.true_range_mbps;
        // the paper's trace varies over tens of Mb/s at 10 ms
        assert!(th - tl > 15.0, "variation only {tl}..{th}");
    }
}
