//! Pitfall 1 / **Figure 1**: ignoring the variability of the avail-bw
//! process.
//!
//! Even with perfect per-sample measurement, `k` Poisson samples of
//! `A_tau(t)` give a sample mean whose error is governed by
//! `Var[m_A(k)] = Var[A_tau] / k` (Equation 11), and `Var[A_tau]` grows
//! as the averaging timescale shrinks. The experiment samples the
//! synthetic NLANR-substitute trace at three timescales and reports the
//! CDF of the relative error of the 20-sample mean — Figure 1's three
//! curves.

use abw_exec::Executor;
use abw_stats::ecdf::Ecdf;
use abw_stats::sampling::relative_error;
use abw_trace::{SyntheticTrace, SyntheticTraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct VariabilityConfig {
    /// The trace to sample (the NLANR substitute by default).
    pub trace: SyntheticTraceConfig,
    /// Averaging timescales in milliseconds (paper: 1, 10, 100).
    pub timescales_ms: Vec<u64>,
    /// Samples per trial (paper: k = 20).
    pub samples_per_trial: usize,
    /// Independent trials, each yielding one relative-error value.
    pub trials: usize,
    /// Sampling RNG seed.
    pub seed: u64,
}

impl Default for VariabilityConfig {
    fn default() -> Self {
        VariabilityConfig {
            trace: SyntheticTraceConfig::default(),
            timescales_ms: vec![1, 10, 100],
            samples_per_trial: 20,
            trials: 1000,
            seed: 0xF161,
        }
    }
}

impl VariabilityConfig {
    /// A scaled-down configuration for tests.
    pub fn quick() -> Self {
        VariabilityConfig {
            trace: SyntheticTraceConfig {
                duration: abw_netsim::SimDuration::from_secs(10),
                warmup: abw_netsim::SimDuration::from_secs(1),
                ..SyntheticTraceConfig::default()
            },
            trials: 200,
            ..VariabilityConfig::default()
        }
    }
}

/// One curve of Figure 1.
#[derive(Debug)]
pub struct VariabilityCurve {
    /// Averaging timescale in milliseconds.
    pub tau_ms: u64,
    /// ECDF of the relative error of the sample mean.
    pub error_cdf: Ecdf,
    /// Fraction of trials with |error| > 5%.
    pub frac_above_5pct: f64,
    /// Population standard deviation of `A_tau` (Mb/s), for reference.
    pub population_sd_mbps: f64,
}

/// The full Figure 1 result.
#[derive(Debug)]
pub struct VariabilityResult {
    /// Mean avail-bw of the trace, Mb/s.
    pub trace_mean_mbps: f64,
    /// One curve per timescale.
    pub curves: Vec<VariabilityCurve>,
}

/// Runs the Figure 1 experiment with the executor configured from
/// `ABW_JOBS`.
pub fn run(config: &VariabilityConfig) -> VariabilityResult {
    run_with(config, &Executor::from_env())
}

/// Runs the Figure 1 experiment, sampling each timescale as its own
/// `exec` job. The trace is generated once and shared read-only; each
/// timescale owns an RNG stream derived from `(seed, tau)`, so its
/// samples do not depend on which other timescales run or in what
/// order.
pub fn run_with(config: &VariabilityConfig, exec: &Executor) -> VariabilityResult {
    let trace = SyntheticTrace::generate(&config.trace);
    let process = &trace.process;
    let truth = process.mean();

    let jobs: Vec<_> = config
        .timescales_ms
        .iter()
        .map(|&tau_ms| {
            move || {
                let tau_ns = tau_ms * 1_000_000;
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(tau_ms << 16));
                let mut errors = Vec::with_capacity(config.trials);
                for _ in 0..config.trials {
                    let samples =
                        process.poisson_sample(&mut rng, tau_ns, config.samples_per_trial);
                    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
                    errors.push(relative_error(mean, truth));
                }
                let error_cdf = Ecdf::new(errors);
                let frac_above_5pct = error_cdf.fraction_abs_above(0.05);
                VariabilityCurve {
                    tau_ms,
                    error_cdf,
                    frac_above_5pct,
                    population_sd_mbps: process.population(tau_ns).stddev() / 1e6,
                }
            }
        })
        .collect();
    let curves = exec.run(jobs);

    VariabilityResult {
        trace_mean_mbps: truth / 1e6,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_as_timescale_shrinks() {
        let result = run(&VariabilityConfig::quick());
        assert_eq!(result.curves.len(), 3);
        // population SD must decrease with tau...
        let sds: Vec<f64> = result.curves.iter().map(|c| c.population_sd_mbps).collect();
        assert!(sds[0] > sds[1] && sds[1] > sds[2], "SDs: {sds:?}");
        // ...and so must the sample-mean error spread
        let iqr = |c: &VariabilityCurve| {
            c.error_cdf.quantile(0.75).unwrap() - c.error_cdf.quantile(0.25).unwrap()
        };
        let spreads: Vec<f64> = result.curves.iter().map(iqr).collect();
        assert!(
            spreads[0] > spreads[1] && spreads[1] > spreads[2],
            "IQRs: {spreads:?}"
        );
        // the paper's headline: at 1 ms, 20 samples are not enough
        assert!(
            result.curves[0].frac_above_5pct > 0.2,
            "1 ms curve too tight: {}",
            result.curves[0].frac_above_5pct
        );
    }

    #[test]
    fn errors_are_centred() {
        // Poisson sampling is unbiased: the error median must be near 0
        let result = run(&VariabilityConfig::quick());
        for c in &result.curves {
            let median = c.error_cdf.median().unwrap();
            assert!(
                median.abs() < 0.05,
                "tau = {} ms: median error {median}",
                c.tau_ms
            );
        }
    }
}
