//! The declarative scenario format: a few lines of text fully determine
//! an experiment.
//!
//! Scenario setup used to be Rust code, so the set of scenarios the
//! repo could exercise was gated on writing more Rust. This module
//! promotes the kebab-case impairment-spec idiom into a full scenario
//! DSL — topology hops, per-hop cross-traffic mix, impairment specs
//! verbatim, the tool list by registry name, seeds and run options —
//! parseable from any `.scn` file and renderable back to canonical text
//! ([`ScenarioSpec::to_spec`]) for byte-exact golden pinning.
//!
//! # Format
//!
//! Line oriented; `#` starts a comment line, blank lines are ignored.
//! The first content line names the scenario; `key = value` lines set
//! run options; each `hop` line appends one hop to the probing path in
//! order, as inline `key=value` items (quote a value containing spaces):
//!
//! ```text
//! scenario tight-not-narrow
//! seeds = 11, 22, 33
//! warmup = 500ms
//! rounds = 1
//! quick = true
//! tools = pathload, spruce
//!
//! hop capacity=100000000 latency=1ms cross=poisson cross-rate=0 cross-sizes=1500
//! hop capacity=155520000 latency=1ms cross=poisson cross-rate=100000000 \
//!     cross-sizes=1500 impair="loss=0.01, jitter=500us"
//! ```
//!
//! (The backslash above is doc-formatting only: a hop is one line.)
//!
//! | hop key | value | default |
//! |---------|-------|---------|
//! | `capacity` | link capacity, bits/s | required |
//! | `latency` | propagation delay (`ns`/`us`/`ms`/`s`) | `1ms` |
//! | `cross` | `cbr`, `poisson`, `pareto-on-off`, `pareto-interarrival` | `poisson` |
//! | `cross-rate` | mean cross-traffic rate, bits/s (must be < capacity) | `0` |
//! | `cross-sizes` | `1500`, `internet-mix`, or `size:prob;size:prob…` | `1500` |
//! | `queue` | queue bound, bytes (omit for unbounded) | unbounded |
//! | `impair` | a PR-5 impairment spec string, verbatim | none |
//!
//! Parse errors are reported in the `abw-lint` style —
//! `file:line:col: message` — pointing at the offending token.
//!
//! # Round trip
//!
//! [`ScenarioSpec::to_spec`] renders the canonical form: floats with
//! their shortest round-trip representation, durations as an integer
//! count of the largest exact unit, impairments through
//! [`ImpairmentConfig::to_spec`]. `parse(to_spec(s)) == s` holds for
//! every valid spec (pinned by property tests), with one documented
//! normalisation: a hop whose impairment is a no-op renders without an
//! `impair` item.

use std::fmt;

use abw_exec::Executor;
use abw_netsim::{impair, ImpairmentConfig, SimDuration};
use abw_traffic::SizeDist;

use crate::scenario::{CrossKind, HopSpec, Scenario};
use crate::tools::registry::{self, ToolConfig, ToolEntry};
use crate::tools::Verdict;

/// A parse diagnostic, locating the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The file name handed to [`ScenarioSpec::parse`].
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A fully parsed, validated scenario specification.
///
/// Everything a run needs: the topology ([`HopSpec`]s in path order),
/// the seeds, the registry tools to drive, and the run options. Build
/// one programmatically and render it with [`ScenarioSpec::to_spec`],
/// or parse one from text with [`ScenarioSpec::parse`]; the two are
/// exact inverses.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (`[A-Za-z0-9_-]+`).
    pub name: String,
    /// Seeds to repeat the run over (at least one).
    pub seeds: Vec<u64>,
    /// Warm-up before probing starts.
    pub warmup: SimDuration,
    /// Registry kebab-names of the tools to drive; empty means "let
    /// the runner decide" (the generic runner uses the whole registry).
    pub tools: Vec<String>,
    /// Estimation rounds per (tool, seed) cell over one live session.
    pub rounds: u32,
    /// Use the scaled-down quick tool settings.
    pub quick: bool,
    /// The topology, in path order.
    pub hops: Vec<HopSpec>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed".to_string(),
            seeds: vec![0xD0C5],
            warmup: SimDuration::from_millis(500),
            tools: Vec::new(),
            rounds: 1,
            quick: true,
            hops: Vec::new(),
        }
    }
}

/// The default hop a bare `hop capacity=…` line produces.
fn default_hop() -> HopSpec {
    HopSpec {
        capacity_bps: 0.0,
        cross_rate_bps: 0.0,
        cross: CrossKind::Poisson,
        cross_sizes: SizeDist::Constant(1500),
        prop_delay: SimDuration::from_millis(1),
        queue_bytes: None,
        impairment: None,
    }
}

/// One `key=value` token of a hop line, with its location.
struct HopItem<'a> {
    key: &'a str,
    value: String,
    key_col: u32,
    value_col: u32,
}

impl ScenarioSpec {
    /// Parses a scenario spec from `src`; `file` names the source in
    /// diagnostics (use the path, or something like `<inline>`).
    pub fn parse(src: &str, file: &str) -> Result<ScenarioSpec, ParseError> {
        let mut spec = ScenarioSpec {
            name: String::new(),
            seeds: Vec::new(),
            warmup: SimDuration::from_millis(500),
            tools: Vec::new(),
            rounds: 1,
            quick: true,
            hops: Vec::new(),
        };
        let err = |line: u32, col: u32, message: String| ParseError {
            file: file.to_string(),
            line,
            col,
            message,
        };
        let mut saw_header = false;
        let mut seen_keys: Vec<String> = Vec::new();
        let mut explicit = Explicit::default();

        for (idx, raw) in src.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let indent = (raw.len() - raw.trim_start().len()) as u32;

            if !saw_header {
                let Some(name) = trimmed.strip_prefix("scenario ") else {
                    return Err(err(
                        line_no,
                        indent + 1,
                        "the first line must be `scenario <name>`".to_string(),
                    ));
                };
                let name = name.trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    return Err(err(
                        line_no,
                        indent + 1 + "scenario ".len() as u32,
                        format!("scenario name `{name}` must match [A-Za-z0-9_-]+"),
                    ));
                }
                spec.name = name.to_string();
                saw_header = true;
                continue;
            }

            if trimmed == "hop" || trimmed.starts_with("hop ") {
                let hop = parse_hop_line(raw, line_no, file)?;
                spec.hops.push(hop);
                continue;
            }

            // top-level `key = value`
            let Some(eq) = raw.find('=') else {
                return Err(err(
                    line_no,
                    indent + 1,
                    format!("expected `key = value` or `hop …`, got `{trimmed}`"),
                ));
            };
            let key = raw[..eq].trim();
            let value = raw[eq + 1..].trim();
            let key_col = (raw.len() - raw.trim_start().len()) as u32 + 1;
            let value_col =
                (eq + 1 + (raw[eq + 1..].len() - raw[eq + 1..].trim_start().len())) as u32 + 1;
            if seen_keys.iter().any(|k| k == key) {
                return Err(err(
                    line_no,
                    key_col,
                    format!("duplicate key `{key}` (each key may appear once)"),
                ));
            }
            seen_keys.push(key.to_string());
            match key {
                "seeds" => {
                    for part in value.split(',').map(str::trim) {
                        let seed = parse_seed(part).map_err(|m| err(line_no, value_col, m))?;
                        spec.seeds.push(seed);
                    }
                    explicit.seeds = true;
                }
                "warmup" => {
                    spec.warmup =
                        impair::parse_duration(value).map_err(|m| err(line_no, value_col, m))?;
                }
                "rounds" => {
                    let rounds: u32 = value.parse().map_err(|_| {
                        err(line_no, value_col, format!("`{value}` is not a count"))
                    })?;
                    if rounds == 0 {
                        return Err(err(
                            line_no,
                            value_col,
                            "rounds must be at least 1".to_string(),
                        ));
                    }
                    spec.rounds = rounds;
                }
                "quick" => {
                    spec.quick = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(err(
                                line_no,
                                value_col,
                                format!("quick must be `true` or `false`, got `{other}`"),
                            ))
                        }
                    };
                }
                "tools" => {
                    for part in value.split(',').map(str::trim) {
                        if registry::find(part).is_none() {
                            return Err(err(
                                line_no,
                                value_col,
                                format!("`{part}` is not a registered tool (see `registry::all`)"),
                            ));
                        }
                        spec.tools.push(part.to_string());
                    }
                }
                other => {
                    return Err(err(
                        line_no,
                        key_col,
                        format!(
                            "unknown key `{other}` (expected seeds, warmup, rounds, quick, \
                             tools, or a `hop` line)"
                        ),
                    ));
                }
            }
        }

        if !saw_header {
            return Err(err(
                1,
                1,
                "empty spec: missing `scenario <name>`".to_string(),
            ));
        }
        if !explicit.seeds {
            spec.seeds = vec![0xD0C5];
        }
        if spec.hops.is_empty() {
            return Err(err(1, 1, "scenario has no `hop` lines".to_string()));
        }
        Ok(spec)
    }

    /// Renders the canonical text form — the exact inverse of
    /// [`ScenarioSpec::parse`] (see the module docs for the one
    /// no-op-impairment normalisation).
    pub fn to_spec(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenario {}", self.name);
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "seeds = {}", seeds.join(", "));
        let _ = writeln!(out, "warmup = {}", impair::fmt_duration(self.warmup));
        let _ = writeln!(out, "rounds = {}", self.rounds);
        let _ = writeln!(out, "quick = {}", self.quick);
        if !self.tools.is_empty() {
            let _ = writeln!(out, "tools = {}", self.tools.join(", "));
        }
        out.push('\n');
        for hop in &self.hops {
            let _ = write!(
                out,
                "hop capacity={} latency={} cross={} cross-rate={} cross-sizes={}",
                hop.capacity_bps,
                impair::fmt_duration(hop.prop_delay),
                cross_kind_name(hop.cross),
                hop.cross_rate_bps,
                fmt_sizes(&hop.cross_sizes),
            );
            if let Some(q) = hop.queue_bytes {
                let _ = write!(out, " queue={q}");
            }
            if let Some(cfg) = &hop.impairment {
                if !cfg.is_noop() {
                    let _ = write!(out, " impair=\"{}\"", cfg.to_spec());
                }
            }
            out.push('\n');
        }
        out
    }

    /// The registry entries this spec drives: the named tools, or the
    /// whole registry when the spec names none.
    pub fn tool_entries(&self) -> Vec<&'static ToolEntry> {
        if self.tools.is_empty() {
            registry::all().iter().collect()
        } else {
            self.tools
                .iter()
                .map(|name| registry::find(name).expect("validated at parse time"))
                .collect()
        }
    }

    /// Capacity of the spec's narrow link, `Cn = min C_i`.
    pub fn narrow_capacity_bps(&self) -> f64 {
        self.hops
            .iter()
            .map(|h| h.capacity_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Capacity of the spec's tight link (minimum configured avail-bw).
    pub fn tight_capacity_bps(&self) -> f64 {
        self.hops
            .iter()
            .min_by(|a, b| a.avail_bps().total_cmp(&b.avail_bps()))
            .expect("a spec has at least one hop")
            .capacity_bps
    }

    /// The [`ToolConfig`] the spec's tools are built with: quick flag
    /// from the spec, `Ct` from the spec's tight hop.
    pub fn tool_config(&self) -> ToolConfig {
        ToolConfig {
            tight_capacity_bps: self.tight_capacity_bps(),
            quick: self.quick,
        }
    }
}

/// Which optional top-level keys appeared explicitly (so defaults can
/// be applied only when absent).
#[derive(Default)]
struct Explicit {
    seeds: bool,
}

impl Scenario {
    /// Builds a ready-to-probe scenario from a spec: the spec's hops
    /// wired with cross traffic and impairments exactly as
    /// [`Scenario::from_hops`] would, warmed up for the spec's warm-up
    /// duration. Bit-identical to building the same [`HopSpec`]s in
    /// Rust with the same `seed`.
    pub fn from_spec(spec: &ScenarioSpec, seed: u64) -> Scenario {
        let mut s = Scenario::from_hops(spec.hops.clone(), seed);
        s.warm_up(spec.warmup);
        s
    }
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("`{s}` is not a seed (u64, decimal or 0x-hex)"))
}

fn cross_kind_name(kind: CrossKind) -> &'static str {
    match kind {
        CrossKind::Cbr => "cbr",
        CrossKind::Poisson => "poisson",
        CrossKind::ParetoOnOff => "pareto-on-off",
        CrossKind::ParetoInterarrival => "pareto-interarrival",
    }
}

fn parse_cross_kind(s: &str) -> Result<CrossKind, String> {
    match s {
        "cbr" => Ok(CrossKind::Cbr),
        "poisson" => Ok(CrossKind::Poisson),
        "pareto-on-off" => Ok(CrossKind::ParetoOnOff),
        "pareto-interarrival" => Ok(CrossKind::ParetoInterarrival),
        other => Err(format!(
            "unknown cross model `{other}` (cbr, poisson, pareto-on-off, pareto-interarrival)"
        )),
    }
}

fn fmt_sizes(sizes: &SizeDist) -> String {
    match sizes {
        SizeDist::Constant(s) => s.to_string(),
        SizeDist::Empirical(entries) => entries
            .iter()
            .map(|(size, p)| format!("{size}:{p}"))
            .collect::<Vec<_>>()
            .join(";"),
    }
}

fn parse_sizes(s: &str) -> Result<SizeDist, String> {
    if s == "internet-mix" {
        return Ok(SizeDist::internet_mix());
    }
    if !s.contains(':') {
        let size: u32 = s
            .parse()
            .map_err(|_| format!("`{s}` is not a packet size in bytes"))?;
        if size == 0 {
            return Err("packet size must be positive".to_string());
        }
        return Ok(SizeDist::Constant(size));
    }
    let mut entries = Vec::new();
    let mut total = 0.0;
    for pair in s.split(';') {
        let (size, p) = pair
            .split_once(':')
            .ok_or_else(|| format!("size entry `{pair}` is not size:prob"))?;
        let size: u32 = size
            .parse()
            .map_err(|_| format!("`{size}` is not a packet size in bytes"))?;
        let p: f64 = p
            .parse()
            .map_err(|_| format!("`{p}` is not a probability"))?;
        if size == 0 {
            return Err("packet size must be positive".to_string());
        }
        if !(p > 0.0 && p.is_finite()) {
            return Err(format!(
                "size probability `{p}` must be positive and finite"
            ));
        }
        total += p;
        entries.push((size, p));
    }
    if (total - 1.0).abs() > 1e-9 {
        return Err(format!("size probabilities sum to {total}, expected 1"));
    }
    Ok(SizeDist::Empirical(entries))
}

fn parse_rate(s: &str) -> Result<f64, String> {
    let rate: f64 = s
        .parse()
        .map_err(|_| format!("`{s}` is not a rate in bits/s"))?;
    if !rate.is_finite() || rate < 0.0 {
        return Err(format!("rate `{s}` must be finite and non-negative"));
    }
    Ok(rate)
}

/// Splits a hop line into `key=value` items starting at byte `start`
/// (past the `hop` keyword), honouring double quotes around values (an
/// `impair` spec contains spaces and commas). Columns are 1-based over
/// the whole line.
fn tokenize_hop_line<'a>(
    raw: &'a str,
    start: usize,
    line: u32,
    file: &str,
) -> Result<Vec<HopItem<'a>>, ParseError> {
    let err = |col: u32, message: String| ParseError {
        file: file.to_string(),
        line,
        col,
        message,
    };
    let bytes = raw.as_bytes();
    let mut items = Vec::new();
    let mut i = start;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        // scan the key up to `=`
        while i < bytes.len() && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            return Err(err(
                start as u32 + 1,
                format!("hop item `{}` is not key=value", &raw[start..i]),
            ));
        }
        let key = &raw[start..i];
        i += 1; // consume `=`
        let value_start = i;
        let value = if i < bytes.len() && bytes[i] == b'"' {
            i += 1;
            let content_start = i;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(err(
                    value_start as u32 + 1,
                    format!("unterminated quote in `{key}` value"),
                ));
            }
            let content = raw[content_start..i].to_string();
            i += 1; // closing quote
            content
        } else {
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            raw[value_start..i].to_string()
        };
        items.push(HopItem {
            key,
            value,
            key_col: start as u32 + 1,
            value_col: value_start as u32 + 1,
        });
    }
    Ok(items)
}

fn parse_hop_line(raw: &str, line: u32, file: &str) -> Result<HopSpec, ParseError> {
    let err = |col: u32, message: String| ParseError {
        file: file.to_string(),
        line,
        col,
        message,
    };
    // skip past the `hop` keyword (the caller matched it)
    let indent = raw.len() - raw.trim_start().len();
    let items = tokenize_hop_line(raw, indent + "hop".len(), line, file)?;
    let mut hop = default_hop();
    let mut saw_capacity = false;
    let mut seen: Vec<&str> = Vec::new();
    for item in &items {
        if seen.contains(&item.key) {
            return Err(err(
                item.key_col,
                format!(
                    "duplicate hop key `{}` (each key may appear once)",
                    item.key
                ),
            ));
        }
        seen.push(item.key);
        match item.key {
            "capacity" => {
                let c = parse_rate(&item.value).map_err(|m| err(item.value_col, m))?;
                if c <= 0.0 {
                    return Err(err(item.value_col, "capacity must be positive".to_string()));
                }
                hop.capacity_bps = c;
                saw_capacity = true;
            }
            "latency" => {
                hop.prop_delay =
                    impair::parse_duration(&item.value).map_err(|m| err(item.value_col, m))?;
            }
            "cross" => {
                hop.cross = parse_cross_kind(&item.value).map_err(|m| err(item.value_col, m))?;
            }
            "cross-rate" => {
                hop.cross_rate_bps = parse_rate(&item.value).map_err(|m| err(item.value_col, m))?;
            }
            "cross-sizes" => {
                hop.cross_sizes = parse_sizes(&item.value).map_err(|m| err(item.value_col, m))?;
            }
            "queue" => {
                let q: u64 = item.value.parse().map_err(|_| {
                    err(
                        item.value_col,
                        format!("`{}` is not a queue bound in bytes", item.value),
                    )
                })?;
                if q == 0 {
                    return Err(err(
                        item.value_col,
                        "queue bound must be positive (omit the key for unbounded)".to_string(),
                    ));
                }
                hop.queue_bytes = Some(q);
            }
            "impair" => {
                if item.value.trim().is_empty() {
                    return Err(err(
                        item.value_col,
                        "empty impairment spec (drop the key instead)".to_string(),
                    ));
                }
                let cfg =
                    ImpairmentConfig::parse(&item.value).map_err(|m| err(item.value_col, m))?;
                hop.impairment = Some(cfg);
            }
            other => {
                return Err(err(
                    item.key_col,
                    format!(
                        "unknown hop key `{other}` (capacity, latency, cross, cross-rate, \
                         cross-sizes, queue, impair)"
                    ),
                ));
            }
        }
    }
    if !saw_capacity {
        let col = (raw.len() - raw.trim_start().len()) as u32 + 1;
        return Err(err(col, "hop needs `capacity=<bits/s>`".to_string()));
    }
    if hop.cross_rate_bps >= hop.capacity_bps {
        return Err(err(
            (raw.len() - raw.trim_start().len()) as u32 + 1,
            format!(
                "cross-rate {} must be below capacity {} (a saturated hop never drains)",
                hop.cross_rate_bps, hop.capacity_bps
            ),
        ));
    }
    Ok(hop)
}

/// One verdict produced by [`run_spec`].
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// Registry name of the tool.
    pub tool: &'static str,
    /// The seed this cell ran with.
    pub seed: u64,
    /// 0-based round within the cell's live session.
    pub round: u32,
    /// The tool's verdict.
    pub verdict: Verdict,
}

/// One `(tool, seed, round)` cell abandoned at the simulated-time
/// budget of [`run_spec_bounded`]. A timeout is an *outcome class*, not
/// a failure: the palette's 99 %-utilisation multi-hop corners
/// legitimately take minutes of simulated probing, and a bounded run
/// records that they ran long instead of stalling on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecTimeout {
    /// Registry name of the tool.
    pub tool: &'static str,
    /// The seed this cell ran with.
    pub seed: u64,
    /// 0-based round the deadline interrupted; later rounds of the cell
    /// are skipped (they would start already past the deadline).
    pub round: u32,
}

/// The outcomes and timeouts of one [`run_spec_bounded`] call.
#[derive(Debug, Clone, Default)]
pub struct BoundedRun {
    /// Verdicts of the cells that finished, tool-major in submission
    /// order — byte-identical for any worker count.
    pub outcomes: Vec<SpecOutcome>,
    /// Cells the budget cut short, in the same deterministic order.
    pub timeouts: Vec<SpecTimeout>,
}

/// Drives a spec through the registry: one job per `(tool, seed)` cell
/// fanned across `exec`, each building its own [`Scenario::from_spec`]
/// replica and driving `rounds` fresh estimators over one live session
/// (so later rounds see the queue state earlier rounds left behind,
/// exactly like the `tracking` experiment). Outcomes are returned
/// tool-major in submission order — byte-identical for any worker
/// count.
pub fn run_spec(spec: &ScenarioSpec, exec: &Executor) -> Vec<SpecOutcome> {
    run_spec_bounded(spec, exec, None).outcomes
}

/// [`run_spec`] with an optional per-cell simulated-time budget.
///
/// Each `(tool, seed)` cell gets `max_scenario` of *simulated* time
/// measured from the end of its warm-up; a round that is still probing
/// at the deadline is abandoned via [`Session::drive_until`] and
/// recorded as a [`SpecTimeout`] instead of a verdict (the cell's
/// remaining rounds are skipped). `None` reproduces [`run_spec`]
/// exactly. The budget is part of the run's identity: the same spec
/// under a different budget may yield a different outcome list.
///
/// [`Session::drive_until`]: crate::probe::Session::drive_until
pub fn run_spec_bounded(
    spec: &ScenarioSpec,
    exec: &Executor,
    max_scenario: Option<SimDuration>,
) -> BoundedRun {
    let entries = spec.tool_entries();
    let tool_config = spec.tool_config();
    let rounds = spec.rounds;
    let jobs: Vec<_> = entries
        .iter()
        .flat_map(|&entry| {
            let spec = spec.clone();
            let tool_config = tool_config.clone();
            spec.seeds.clone().into_iter().map(move |seed| {
                let spec = spec.clone();
                let tool_config = tool_config.clone();
                move || {
                    let mut s = Scenario::from_spec(&spec, seed);
                    let deadline = max_scenario.map(|d| s.sim.now() + d);
                    let mut session = s.session();
                    let mut verdicts: Vec<Verdict> = Vec::with_capacity(rounds as usize);
                    for _ in 0..rounds {
                        let mut tool = entry.build(&tool_config);
                        let verdict = match deadline {
                            Some(t) => session.drive_until(&mut s.sim, tool.as_mut(), t),
                            None => Some(session.drive(&mut s.sim, tool.as_mut())),
                        };
                        match verdict {
                            Some(v) => verdicts.push(v),
                            None => break,
                        }
                    }
                    verdicts
                }
            })
        })
        .collect();
    let cells = exec.run(jobs);

    let mut run = BoundedRun::default();
    for (i, verdicts) in cells.into_iter().enumerate() {
        let entry = entries[i / spec.seeds.len()];
        let seed = spec.seeds[i % spec.seeds.len()];
        let finished = verdicts.len() as u32;
        for (round, verdict) in verdicts.into_iter().enumerate() {
            run.outcomes.push(SpecOutcome {
                tool: entry.name,
                seed,
                round: round as u32,
                verdict,
            });
        }
        if finished < rounds {
            run.timeouts.push(SpecTimeout {
                tool: entry.name,
                seed,
                round: finished,
            });
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use abw_netsim::SimTime;

    fn parse(src: &str) -> ScenarioSpec {
        ScenarioSpec::parse(src, "test.scn").unwrap_or_else(|e| panic!("{e}"))
    }

    fn parse_err(src: &str) -> ParseError {
        ScenarioSpec::parse(src, "test.scn").expect_err("spec must be rejected")
    }

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = parse("scenario tiny\nhop capacity=50000000\n");
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.seeds, vec![0xD0C5]);
        assert_eq!(spec.warmup, SimDuration::from_millis(500));
        assert_eq!(spec.rounds, 1);
        assert!(spec.quick);
        assert!(spec.tools.is_empty());
        assert_eq!(spec.hops.len(), 1);
        let hop = &spec.hops[0];
        assert_eq!(hop.capacity_bps, 50e6);
        assert_eq!(hop.cross_rate_bps, 0.0);
        assert_eq!(hop.cross, CrossKind::Poisson);
        assert_eq!(hop.prop_delay, SimDuration::from_millis(1));
        assert_eq!(hop.queue_bytes, None);
        assert!(hop.impairment.is_none());
    }

    #[test]
    fn full_spec_parses() {
        let spec = parse(
            "# the tight!=narrow path\n\
             scenario tight-not-narrow\n\
             seeds = 11, 0x16, 33\n\
             warmup = 250ms\n\
             rounds = 2\n\
             quick = false\n\
             tools = pathload, spruce\n\
             \n\
             hop capacity=100000000 cross-rate=0\n\
             hop capacity=155520000 latency=2ms cross=cbr cross-rate=100000000 \
             cross-sizes=internet-mix queue=64000 impair=\"loss=0.01, jitter=500us\"\n",
        );
        assert_eq!(spec.seeds, vec![11, 22, 33]);
        assert_eq!(spec.warmup, SimDuration::from_millis(250));
        assert_eq!(spec.rounds, 2);
        assert!(!spec.quick);
        assert_eq!(spec.tools, vec!["pathload", "spruce"]);
        assert_eq!(spec.hops.len(), 2);
        let h = &spec.hops[1];
        assert_eq!(h.cross, CrossKind::Cbr);
        assert_eq!(h.cross_sizes, SizeDist::internet_mix());
        assert_eq!(h.queue_bytes, Some(64000));
        let imp = h.impairment.as_ref().unwrap();
        assert_eq!(imp.jitter, Some(SimDuration::from_micros(500)));
    }

    #[test]
    fn round_trip_is_exact() {
        let spec = parse(
            "scenario rt\n\
             seeds = 7\n\
             warmup = 123us\n\
             tools = delphi\n\
             hop capacity=51300000.5 latency=1536ns cross=pareto-on-off \
             cross-rate=12345678.25 cross-sizes=40:0.5;576:0.25;1500:0.25 \
             queue=3000 impair=\"ge-loss=0.05:0.4:0.5, reorder=0.1:2ms, flap=1s:20000000\"\n",
        );
        let rendered = spec.to_spec();
        let reparsed = ScenarioSpec::parse(&rendered, "test.scn")
            .unwrap_or_else(|e| panic!("canonical form does not re-parse: {e}\n{rendered}"));
        assert_eq!(spec, reparsed, "canonical form:\n{rendered}");
        // and the canonical form is a fixpoint
        assert_eq!(rendered, reparsed.to_spec());
    }

    #[test]
    fn errors_carry_file_line_col() {
        let e = parse_err("scenario x\nhop capacity=50000000\nwat = 1\n");
        assert_eq!((e.line, e.col), (3, 1));
        assert_eq!(e.file, "test.scn");
        assert!(e.message.contains("unknown key `wat`"), "{e}");
        assert_eq!(
            e.to_string(),
            "test.scn:3:1: unknown key `wat` (expected seeds, warmup, rounds, quick, tools, \
             or a `hop` line)"
        );
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = parse_err("scenario x\nseeds = 1\nseeds = 2\nhop capacity=1000000\n");
        assert_eq!((e.line, e.col), (3, 1));
        assert!(e.message.contains("duplicate key `seeds`"), "{e}");

        let e = parse_err("scenario x\nhop capacity=1000000 capacity=2000000\n");
        assert_eq!((e.line, e.col), (2, 22));
        assert!(e.message.contains("duplicate hop key `capacity`"), "{e}");
    }

    #[test]
    fn bad_values_point_at_the_value() {
        let e = parse_err("scenario x\nhop capacity=fast\n");
        assert_eq!((e.line, e.col), (2, 14));
        assert!(e.message.contains("not a rate"), "{e}");

        let e = parse_err("scenario x\nhop capacity=1000000 impair=\"loss=1.5\"\n");
        assert_eq!((e.line, e.col), (2, 29));
        assert!(e.message.contains("out of [0, 1]"), "{e}");

        let e = parse_err("scenario x\ntools = pathload, warp-drive\nhop capacity=1000000\n");
        assert_eq!((e.line, e.col), (2, 9));
        assert!(e.message.contains("not a registered tool"), "{e}");
    }

    #[test]
    fn structural_errors_are_rejected() {
        assert!(parse_err("").message.contains("empty spec"));
        assert!(parse_err("hop capacity=1\n")
            .message
            .contains("first line must be"));
        assert!(parse_err("scenario x\n").message.contains("no `hop` lines"));
        assert!(parse_err("scenario x\nhop latency=1ms\n")
            .message
            .contains("needs `capacity"));
        // saturated hop
        let e = parse_err("scenario x\nhop capacity=1000000 cross-rate=1000000\n");
        assert!(e.message.contains("below capacity"), "{e}");
        // unterminated quote
        let e = parse_err("scenario x\nhop capacity=1000000 impair=\"loss=0.1\n");
        assert!(e.message.contains("unterminated quote"), "{e}");
    }

    #[test]
    fn from_spec_matches_hand_built_scenario() {
        use crate::scenario::SingleHopConfig;
        let spec = parse(
            "scenario canonical\nseeds = 0xD0C5\nhop capacity=50000000 latency=1ms \
             cross=poisson cross-rate=25000000 cross-sizes=1500\n",
        );
        let seed = spec.seeds[0];
        assert_eq!(seed, SingleHopConfig::default().seed);
        let mut by_hand = Scenario::single_hop(&SingleHopConfig::default());
        by_hand.warm_up(SimDuration::from_millis(500));
        let from_spec = Scenario::from_spec(&spec, seed);
        assert_eq!(by_hand.sim.now(), from_spec.sim.now());
        assert_eq!(
            by_hand.sim.link(by_hand.links[0]).counters(),
            from_spec.sim.link(from_spec.links[0]).counters(),
            "same hops + same seed must replay the same warm-up traffic"
        );
        assert_eq!(
            from_spec.measure_from,
            SimTime::ZERO + SimDuration::from_millis(500)
        );
    }

    #[test]
    fn bounded_run_times_out_and_unbounded_matches_run_spec() {
        let spec = parse(
            "scenario bounded\nseeds = 11\ntools = spruce\n\
             hop capacity=50000000 cross-rate=25000000\n",
        );
        // a 1 ms simulated budget cannot fit a spruce round: the cell
        // must come back as a timeout, not a verdict (and not a panic)
        let tight = run_spec_bounded(
            &spec,
            &Executor::serial(),
            Some(SimDuration::from_millis(1)),
        );
        assert!(tight.outcomes.is_empty(), "no round fits 1 ms");
        assert_eq!(
            tight.timeouts,
            vec![SpecTimeout {
                tool: "spruce",
                seed: 11,
                round: 0
            }]
        );

        // a generous budget changes nothing: bit-identical verdicts
        let unbounded = run_spec(&spec, &Executor::serial());
        let generous = run_spec_bounded(
            &spec,
            &Executor::serial(),
            Some(SimDuration::from_secs(600)),
        );
        assert!(generous.timeouts.is_empty());
        assert_eq!(unbounded.len(), generous.outcomes.len());
        for (a, b) in unbounded.iter().zip(&generous.outcomes) {
            assert_eq!(
                a.verdict.avail_bps().to_bits(),
                b.verdict.avail_bps().to_bits()
            );
            assert_eq!(a.verdict.probe_packets(), b.verdict.probe_packets());
        }
    }

    #[test]
    fn timed_out_session_can_start_a_fresh_round() {
        // rounds = 2 with a budget that cuts round 0: the timeout must
        // leave the session reusable and skip the remaining round
        let spec = parse(
            "scenario two-rounds\nseeds = 7\nrounds = 2\ntools = spruce\n\
             hop capacity=50000000 cross-rate=25000000\n",
        );
        let run = run_spec_bounded(
            &spec,
            &Executor::serial(),
            Some(SimDuration::from_millis(1)),
        );
        assert!(run.outcomes.is_empty());
        assert_eq!(run.timeouts.len(), 1, "one timeout per cell, not per round");
        assert_eq!(run.timeouts[0].round, 0);
    }

    #[test]
    fn run_spec_is_executor_invariant() {
        let spec = parse(
            "scenario inv\nseeds = 11, 22\ntools = spruce, ptr\n\
             hop capacity=50000000 cross-rate=25000000\n",
        );
        let serial = run_spec(&spec, &Executor::serial());
        let parallel = run_spec(&spec, &Executor::new(4));
        assert_eq!(serial.len(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.tool, b.tool);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.round, b.round);
            assert_eq!(
                a.verdict.avail_bps().to_bits(),
                b.verdict.avail_bps().to_bits(),
                "{}/{}",
                a.tool,
                a.seed
            );
            assert_eq!(a.verdict.probe_packets(), b.verdict.probe_packets());
        }
    }
}
