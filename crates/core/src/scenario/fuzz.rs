//! Seeded scenario fuzzing: random valid specs driven through the
//! armed invariant machinery and tool-level sanity checks, with greedy
//! shrinking of failures to minimal reproducer specs.
//!
//! The DSL ([`super::dsl`]) makes a scenario a value; this module makes
//! it a *test case*. A [`FuzzConfig`] names a seed and a count; the
//! fuzzer deterministically generates that many valid specs from fixed
//! palettes, runs each through every check, and — when one fails —
//! shrinks it by deleting hops, seeds, tools, impairments and queue
//! bounds until no single deletion still reproduces the failure. The
//! shrunk spec is rendered with [`ScenarioSpec::to_spec`] and written
//! as a committed-format `.scn` reproducer.
//!
//! # Checks
//!
//! 1. **Round trip** — `parse(to_spec(s)) == s`, the DSL's own
//!    contract.
//! 2. **No panics** — [`dsl::run_spec`] under `catch_unwind`; with
//!    `ABW_CHECK` armed (the fuzzer arms it) a panic is usually an
//!    `ABW_CHECK invariant violated:` report from the simulator.
//! 3. **Serial ≡ parallel** — the outcome list is compared bit-for-bit
//!    between [`Executor::serial`] and a multi-worker executor.
//! 4. **Verdict sanity** — every verdict is finite (or a documented
//!    clamped [`crate::tools::RangeEstimate`]), claims at least one
//!    probe packet, and — on scenarios without timing impairments —
//!    stays below `2 ×` the narrow-link capacity. The slack is not
//!    arbitrary: pathChirp on a near-idle path detects its own
//!    self-congestion a couple of `gamma` steps late and legitimately
//!    reports up to ~1.6 × capacity (pinned by its
//!    `idle_path_reports_top_of_chirp` unit test). Scenarios with
//!    jitter, reordering or capacity flaps are exempt from the upper
//!    bound: compressed packet gaps legitimately inflate dispersion
//!    estimates past the narrow capacity. Negative estimates are
//!    tolerated everywhere (known tool bias under extreme load, not a
//!    harness bug).
//!
//! Release builds compile the invariant checks out
//! ([`abw_netsim::invariants::checks_compiled_in`]); the report records
//! whether they were live so a harness never mistakes a check-free run
//! for a clean one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use abw_exec::Executor;
use abw_netsim::{invariants, ImpairmentConfig, SimDuration};
use abw_traffic::SizeDist;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::scenario::dsl::{self, BoundedRun, ScenarioSpec, SpecOutcome};
use crate::scenario::{CrossKind, HopSpec};
use crate::tools::registry;
use crate::tools::Verdict;

/// An extra per-scenario check, e.g. an injected violation for testing
/// the fuzzer itself. Gets the spec and the (serial) outcomes; an `Err`
/// is a failure with that message.
pub type SpecCheck = fn(&ScenarioSpec, &[SpecOutcome]) -> Result<(), String>;

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: same seed, same specs, same outcomes — bit for bit.
    pub seed: u64,
    /// How many scenarios to generate and check.
    pub count: u32,
    /// Worker count of the parallel leg of the serial≡parallel check.
    pub jobs: usize,
    /// Where to write shrunk reproducer `.scn` files (`None` = don't).
    pub repro_dir: Option<PathBuf>,
    /// Extra check run on every scenario.
    pub extra_check: Option<SpecCheck>,
    /// Maximum spec evaluations spent shrinking one failure.
    pub shrink_budget: u32,
    /// Per-cell *simulated*-time budget, in milliseconds (`None` =
    /// unbounded). A `(tool, seed)` cell still probing at the deadline
    /// is recorded as a timeout, not a failure — the palette's
    /// 99 %-utilisation multi-hop corners legitimately run long, and
    /// the CI smoke leg must not stall on them. The budget feeds the
    /// report fingerprint: bounded and unbounded runs are different
    /// experiments and must not compare equal.
    pub max_scenario_ms: Option<u64>,
}

impl FuzzConfig {
    /// A config with the default jobs (4) and shrink budget (48).
    pub fn new(seed: u64, count: u32) -> Self {
        FuzzConfig {
            seed,
            count,
            jobs: 4,
            repro_dir: None,
            extra_check: None,
            shrink_budget: 48,
            max_scenario_ms: None,
        }
    }
}

/// One failing scenario, original and shrunk.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// 0-based index of the scenario in the run.
    pub index: u32,
    /// The failing check's message (from the *original* spec; shrinking
    /// keeps any-check-fails, so the minimal spec may fail differently).
    pub message: String,
    /// The generated spec that first failed.
    pub spec: ScenarioSpec,
    /// The minimal spec that still fails some check.
    pub shrunk: ScenarioSpec,
    /// Spec evaluations the shrinker spent.
    pub shrink_evals: u32,
    /// Where the reproducer was written, when a `repro_dir` was set and
    /// the write succeeded.
    pub repro_path: Option<PathBuf>,
}

/// The result of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The master seed the run used.
    pub seed: u64,
    /// Scenarios generated and checked.
    pub scenarios: u32,
    /// Total verdicts produced across all passing scenarios.
    pub outcomes: u64,
    /// FNV-1a fingerprint over every passing scenario's outcome list —
    /// equal fingerprints mean bit-identical verdicts (the
    /// reproducibility tests compare this across runs and job counts).
    pub fingerprint: u64,
    /// Cells cut short by the simulated-time budget across all passing
    /// scenarios (always 0 when `max_scenario_ms` is `None`).
    pub timeouts: u64,
    /// Failures found, in generation order.
    pub failures: Vec<FuzzFailure>,
    /// Whether the `ABW_CHECK` invariants were actually live (they
    /// compile out of release builds — a run without them checks less).
    pub invariants_active: bool,
}

/// Runs the fuzzer: generates `config.count` specs from `config.seed`
/// and checks each one. Scenarios are iterated sequentially so the
/// serial≡parallel comparison inside each check runs with real workers
/// (nested executor runs degrade to serial).
pub fn run(config: &FuzzConfig) -> FuzzReport {
    invariants::arm();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = FuzzReport {
        seed: config.seed,
        scenarios: 0,
        outcomes: 0,
        fingerprint: 0xcbf29ce484222325, // FNV-1a offset basis
        timeouts: 0,
        failures: Vec::new(),
        invariants_active: invariants::checks_compiled_in(),
    };
    // the budget is part of the run's identity: a timed-out cell's
    // verdicts are missing from the outcome stream, so runs under
    // different budgets must never fingerprint equal
    match config.max_scenario_ms {
        Some(ms) => fnv_mix(
            &mut report.fingerprint,
            format!("max-scenario-ms={ms}").as_bytes(),
        ),
        None => fnv_mix(&mut report.fingerprint, b"max-scenario-ms=none"),
    }
    for index in 0..config.count {
        let spec = gen_spec(&mut rng, config.seed, index);
        report.scenarios += 1;
        match evaluate(
            &spec,
            config.jobs,
            config.extra_check,
            config.max_scenario_ms,
        ) {
            Ok(run) => {
                report.outcomes += run.outcomes.len() as u64;
                report.timeouts += run.timeouts.len() as u64;
                for o in &run.outcomes {
                    fnv_mix(&mut report.fingerprint, outcome_line(o).as_bytes());
                }
                for t in &run.timeouts {
                    fnv_mix(
                        &mut report.fingerprint,
                        format!("timeout,{},{},{}", t.tool, t.seed, t.round).as_bytes(),
                    );
                }
            }
            Err(message) => {
                let (mut shrunk, shrink_evals) = shrink(
                    &spec,
                    config.jobs,
                    config.extra_check,
                    config.shrink_budget,
                    config.max_scenario_ms,
                );
                shrunk.name = format!("{}-min", spec.name);
                let repro_path = config
                    .repro_dir
                    .as_ref()
                    .and_then(|dir| write_repro(dir, &shrunk));
                report.failures.push(FuzzFailure {
                    index,
                    message,
                    spec,
                    shrunk,
                    shrink_evals,
                    repro_path,
                });
            }
        }
    }
    report
}

/// Generates one random valid spec. Values come from fixed palettes so
/// every spec round-trips exactly and stays inside the validated range
/// (cross rate strictly below capacity, probabilities exactly
/// representable).
pub fn gen_spec(rng: &mut StdRng, run_seed: u64, index: u32) -> ScenarioSpec {
    const CAPS: [f64; 4] = [10e6, 50e6, 100e6, 155.52e6];
    // utilisations up to 0.99: the "extreme but valid" end of the space
    const UTILS: [f64; 6] = [0.0, 0.25, 0.5, 0.8, 0.95, 0.99];
    const SIZES: [u32; 3] = [200, 576, 1500];
    // 3000 B bounds a 1500 B-packet queue at two packets — one queued
    const QUEUES: [u64; 3] = [3000, 15_000, 64_000];
    // no `flap` entries: a flap to a near-zero rate can stall a probing
    // session indefinitely, which the fuzzer would misread as a hang
    const IMPAIRMENTS: [&str; 6] = [
        "loss=0.01",
        "loss=0.05",
        "ge-loss=0.05:0.3:0.5",
        "jitter=200us",
        "reorder=0.05:1ms",
        "loss=0.01, jitter=100us",
    ];
    const WARMUPS_MS: [u64; 3] = [100, 200, 500];

    let n_hops = rng.random_range(1..4u32);
    let hops = (0..n_hops)
        .map(|_| {
            let capacity_bps = CAPS[rng.random_range(0..CAPS.len())];
            let util = UTILS[rng.random_range(0..UTILS.len())];
            let cross = match rng.random_range(0..4u32) {
                0 => CrossKind::Cbr,
                1 => CrossKind::Poisson,
                2 => CrossKind::ParetoOnOff,
                _ => CrossKind::ParetoInterarrival,
            };
            let cross_sizes = match rng.random_range(0..3u32) {
                0 => SizeDist::Constant(SIZES[rng.random_range(0..SIZES.len())]),
                1 => SizeDist::internet_mix(),
                // probabilities exactly representable in binary
                _ => SizeDist::Empirical(vec![(40, 0.5), (1500, 0.5)]),
            };
            let queue_bytes = rng
                .random_bool(0.2)
                .then(|| QUEUES[rng.random_range(0..QUEUES.len())]);
            let impairment = rng.random_bool(0.3).then(|| {
                let spec = IMPAIRMENTS[rng.random_range(0..IMPAIRMENTS.len())];
                ImpairmentConfig::parse(spec).expect("palette specs are valid")
            });
            HopSpec {
                capacity_bps,
                cross_rate_bps: capacity_bps * util,
                cross,
                cross_sizes,
                prop_delay: SimDuration::from_millis(rng.random_range(1..3u64)),
                queue_bytes,
                impairment,
            }
        })
        .collect();

    let n_seeds = rng.random_range(1..3u32);
    let seeds = (0..n_seeds)
        .map(|_| rng.random_range(1..10_000u64))
        .collect();

    let all = registry::all();
    let n_tools = rng.random_range(1..3usize);
    let mut tools: Vec<String> = Vec::new();
    while tools.len() < n_tools {
        let name = all[rng.random_range(0..all.len())].name.to_string();
        if !tools.contains(&name) {
            tools.push(name);
        }
    }

    ScenarioSpec {
        name: format!("fuzz-{run_seed:x}-{index}"),
        seeds,
        warmup: SimDuration::from_millis(WARMUPS_MS[rng.random_range(0..WARMUPS_MS.len())]),
        tools,
        rounds: if rng.random_bool(0.1) { 2 } else { 1 },
        quick: true,
        hops,
    }
}

/// Runs every check against one spec. `Ok` carries the (serial)
/// outcomes and timeouts for fingerprinting; `Err` carries the first
/// failure. A cell hitting the `max_scenario_ms` simulated-time budget
/// is a timeout, never a failure — but serial and parallel legs must
/// still agree on *which* cells timed out.
pub fn evaluate(
    spec: &ScenarioSpec,
    jobs: usize,
    extra_check: Option<SpecCheck>,
    max_scenario_ms: Option<u64>,
) -> Result<BoundedRun, String> {
    // 1. round trip (cheap: no simulation)
    let rendered = spec.to_spec();
    match ScenarioSpec::parse(&rendered, "<canonical>") {
        Err(e) => return Err(format!("round-trip: canonical form fails to parse: {e}")),
        Ok(reparsed) if reparsed != *spec => {
            return Err("round-trip: parse(to_spec(s)) differs from s".to_string())
        }
        Ok(_) => {}
    }

    let budget = max_scenario_ms.map(SimDuration::from_millis);

    // 2. serial run; a panic here is usually an armed ABW_CHECK report
    let serial = catch_unwind(AssertUnwindSafe(|| {
        dsl::run_spec_bounded(spec, &Executor::serial(), budget)
    }))
    .map_err(|p| format!("panic during serial run: {}", panic_message(&p)))?;

    // 3. parallel run must agree bit-for-bit
    let exec = Executor::new(jobs.max(2));
    let parallel = catch_unwind(AssertUnwindSafe(|| {
        dsl::run_spec_bounded(spec, &exec, budget)
    }))
    .map_err(|p| format!("panic during parallel run: {}", panic_message(&p)))?;
    if serial.outcomes.len() != parallel.outcomes.len() {
        return Err(format!(
            "serial/parallel outcome counts differ: {} vs {}",
            serial.outcomes.len(),
            parallel.outcomes.len()
        ));
    }
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        let (la, lb) = (outcome_line(a), outcome_line(b));
        if la != lb {
            return Err(format!("serial/parallel divergence: `{la}` vs `{lb}`"));
        }
    }
    if serial.timeouts != parallel.timeouts {
        return Err(format!(
            "serial/parallel timeout divergence: {:?} vs {:?}",
            serial.timeouts, parallel.timeouts
        ));
    }

    // 4. verdict sanity
    let timing_impaired = has_timing_impairment(spec);
    // 2x, not tighter: pathChirp's excursion analysis spots its own
    // self-congestion a few gamma steps late on a near-idle path and
    // honestly reports up to ~1.6x capacity (see its
    // `idle_path_reports_top_of_chirp` test)
    let cap = 2.0 * spec.narrow_capacity_bps();
    for o in &serial.outcomes {
        let avail = o.verdict.avail_bps();
        let clamped = matches!(&o.verdict, Verdict::Range(r) if r.clamped);
        if clamped {
            continue; // documented degenerate measurement
        }
        if !avail.is_finite() {
            return Err(format!(
                "{} (seed {}) returned a non-finite estimate {avail}",
                o.tool, o.seed
            ));
        }
        if o.verdict.probe_packets() == 0 {
            return Err(format!(
                "{} (seed {}) claims a verdict without sending any probe",
                o.tool, o.seed
            ));
        }
        if !timing_impaired && avail > cap {
            return Err(format!(
                "{} (seed {}) estimated {avail} b/s, above 2x the narrow capacity {} b/s \
                 on a scenario without timing impairments",
                o.tool,
                o.seed,
                spec.narrow_capacity_bps()
            ));
        }
    }

    // 5. injected checks (on the cells that finished)
    if let Some(check) = extra_check {
        check(spec, &serial.outcomes)?;
    }
    Ok(serial)
}

/// True when any hop carries a jitter, reorder or flap impairment —
/// those legitimately push dispersion-based estimates past the narrow
/// capacity, so the upper-bound check exempts them.
fn has_timing_impairment(spec: &ScenarioSpec) -> bool {
    spec.hops.iter().any(|h| {
        h.impairment.as_ref().is_some_and(|cfg| {
            cfg.jitter.is_some_and(|j| j > SimDuration::ZERO)
                || cfg.reorder.is_some_and(|r| r.prob > 0.0)
                || !cfg.flaps.is_empty()
        })
    })
}

/// Greedy shrink: repeatedly tries single simplifications (drop a hop,
/// a seed, restrict to one tool, drop an impairment, zero a cross rate,
/// simplify sizes, drop a queue bound, one round) and keeps any that
/// still fails *some* check, until a full pass makes no progress or the
/// evaluation budget runs out. Returns the smallest failing spec found
/// and the evaluations spent.
pub fn shrink(
    spec: &ScenarioSpec,
    jobs: usize,
    extra_check: Option<SpecCheck>,
    budget: u32,
    max_scenario_ms: Option<u64>,
) -> (ScenarioSpec, u32) {
    let mut best = spec.clone();
    let mut evals = 0u32;
    let still_fails = |cand: &ScenarioSpec, evals: &mut u32| -> bool {
        if *evals >= budget {
            return false;
        }
        *evals += 1;
        evaluate(cand, jobs, extra_check, max_scenario_ms).is_err()
    };

    loop {
        let mut improved = false;

        // drop one hop at a time (paths keep at least one hop)
        if best.hops.len() > 1 {
            for i in 0..best.hops.len() {
                let mut cand = best.clone();
                cand.hops.remove(i);
                if still_fails(&cand, &mut evals) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }

        // one seed
        if !improved && best.seeds.len() > 1 {
            for &seed in &best.seeds {
                let mut cand = best.clone();
                cand.seeds = vec![seed];
                if still_fails(&cand, &mut evals) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }

        // one tool (an empty list means the whole registry, so try each
        // registry tool as a singleton)
        if !improved && best.tools.len() != 1 {
            let candidates: Vec<String> = if best.tools.is_empty() {
                registry::all().iter().map(|t| t.name.to_string()).collect()
            } else {
                best.tools.clone()
            };
            for tool in candidates {
                let mut cand = best.clone();
                cand.tools = vec![tool];
                if still_fails(&cand, &mut evals) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }

        // one round
        if !improved && best.rounds > 1 {
            let mut cand = best.clone();
            cand.rounds = 1;
            if still_fails(&cand, &mut evals) {
                best = cand;
                improved = true;
            }
        }

        // per-hop simplifications
        if !improved {
            'hops: for i in 0..best.hops.len() {
                let mut attempts: Vec<ScenarioSpec> = Vec::new();
                if best.hops[i].impairment.is_some() {
                    let mut cand = best.clone();
                    cand.hops[i].impairment = None;
                    attempts.push(cand);
                }
                if best.hops[i].cross_rate_bps > 0.0 {
                    let mut cand = best.clone();
                    cand.hops[i].cross_rate_bps = 0.0;
                    attempts.push(cand);
                }
                if best.hops[i].cross_sizes != SizeDist::Constant(1500) {
                    let mut cand = best.clone();
                    cand.hops[i].cross_sizes = SizeDist::Constant(1500);
                    attempts.push(cand);
                }
                if best.hops[i].queue_bytes.is_some() {
                    let mut cand = best.clone();
                    cand.hops[i].queue_bytes = None;
                    attempts.push(cand);
                }
                for cand in attempts {
                    if still_fails(&cand, &mut evals) {
                        best = cand;
                        improved = true;
                        break 'hops;
                    }
                }
            }
        }

        if !improved || evals >= budget {
            return (best, evals);
        }
    }
}

/// A canonical one-line rendering of an outcome: equal lines mean
/// bit-identical verdicts (float fields are compared via `to_bits`).
pub fn outcome_line(o: &SpecOutcome) -> String {
    let (lo, hi) = o.verdict.range_bps().unwrap_or((0.0, 0.0));
    format!(
        "{},{},{},{:016x},{:016x},{:016x},{:016x},{}",
        o.tool,
        o.seed,
        o.round,
        o.verdict.avail_bps().to_bits(),
        lo.to_bits(),
        hi.to_bits(),
        o.verdict.elapsed_secs().to_bits(),
        o.verdict.probe_packets(),
    )
}

fn fnv_mix(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100000001b3);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        // a panic rethrown across the executor's worker boundary
        // arrives double-boxed; unwrap one level and retry
        .or_else(|| {
            payload
                .downcast_ref::<Box<dyn std::any::Any + Send>>()
                .map(|inner| panic_message(inner.as_ref()))
        })
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Writes `spec` as `<dir>/<name>.scn`; `None` when the write fails
/// (the failure still carries the shrunk spec itself).
fn write_repro(dir: &std::path::Path, spec: &ScenarioSpec) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{}.scn", spec.name));
    std::fs::write(&path, spec.to_spec()).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_are_valid_and_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..50 {
            let spec = gen_spec(&mut rng, 7, i);
            let rendered = spec.to_spec();
            let reparsed = ScenarioSpec::parse(&rendered, "<gen>")
                .unwrap_or_else(|e| panic!("generated spec does not parse: {e}\n{rendered}"));
            assert_eq!(spec, reparsed, "spec {i} does not round-trip:\n{rendered}");
            assert!(!spec.hops.is_empty());
            for hop in &spec.hops {
                assert!(hop.cross_rate_bps < hop.capacity_bps);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<ScenarioSpec> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|i| gen_spec(&mut rng, 42, i)).collect()
        };
        let b: Vec<ScenarioSpec> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|i| gen_spec(&mut rng, 42, i)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_finds_a_minimal_failing_spec() {
        // an injected "violation": any impaired hop fails
        fn impaired_fails(spec: &ScenarioSpec, _: &[SpecOutcome]) -> Result<(), String> {
            if spec.hops.iter().any(|h| h.impairment.is_some()) {
                Err("injected: impaired hop".to_string())
            } else {
                Ok(())
            }
        }
        let spec = ScenarioSpec {
            name: "shrink-me".to_string(),
            seeds: vec![11, 22],
            tools: vec!["spruce".to_string(), "ptr".to_string()],
            hops: vec![
                HopSpec {
                    impairment: Some(ImpairmentConfig::iid_loss(0.01)),
                    queue_bytes: Some(64_000),
                    ..HopSpec::canonical(CrossKind::Poisson)
                },
                HopSpec::canonical(CrossKind::Cbr),
            ],
            ..ScenarioSpec::default()
        };
        assert!(evaluate(&spec, 2, Some(impaired_fails), None).is_err());
        let (shrunk, evals) = shrink(&spec, 2, Some(impaired_fails), 24, None);
        assert!(evals > 0 && evals <= 24);
        assert!(
            evaluate(&shrunk, 2, Some(impaired_fails), None).is_err(),
            "shrunk spec must still fail"
        );
        assert_eq!(shrunk.hops.len(), 1, "the clean hop should be dropped");
        assert_eq!(shrunk.seeds.len(), 1);
        assert_eq!(shrunk.tools.len(), 1);
        assert!(
            shrunk.hops[0].impairment.is_some(),
            "the failure-carrying impairment must survive shrinking"
        );
        assert!(shrunk.hops[0].queue_bytes.is_none());
    }

    #[test]
    fn timing_impairments_are_recognised() {
        let mut spec = ScenarioSpec {
            hops: vec![HopSpec::canonical(CrossKind::Poisson)],
            ..ScenarioSpec::default()
        };
        assert!(!has_timing_impairment(&spec));
        spec.hops[0].impairment = Some(ImpairmentConfig::iid_loss(0.1));
        assert!(!has_timing_impairment(&spec), "pure loss keeps the bound");
        spec.hops[0].impairment =
            Some(ImpairmentConfig::none().with_jitter(SimDuration::from_micros(100)));
        assert!(has_timing_impairment(&spec));
    }
}
