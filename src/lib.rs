//! # abwe — end-to-end available bandwidth estimation
//!
//! A full reproduction of *"Ten Fallacies and Pitfalls on End-to-End
//! Available Bandwidth Estimation"* (Jain & Dovrolis, IMC 2004): the
//! probing tools the paper classifies, the packet-level simulator its
//! experiments run on, and the code behind every figure and table.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`netsim`] — deterministic discrete-event packet simulator;
//! * [`traffic`] — CBR / Poisson / Pareto ON-OFF / heavy-tail cross
//!   traffic generators and packet-size mixes;
//! * [`stats`] — running moments, ECDFs, OWD trend tests (PCT/PDT),
//!   variance-timescale analysis, Hurst estimation, Poisson sampling;
//! * [`trace`] — the exact avail-bw process `A_tau(t)` from link busy
//!   records, plus the synthetic NLANR-substitute trace;
//! * [`tcp`] — a TCP Reno model (for Figure 7 and responsive cross
//!   traffic);
//! * [`core`] — the estimation framework: the fluid model (Equations
//!   6–10), probing streams, and Delphi-style direct probing, Spruce,
//!   TOPP, Pathload, pathChirp, IGI/PTR, BFind and a bprobe-style
//!   capacity prober; plus one experiment module per fallacy/pitfall.
//!
//! ## Quick start
//!
//! ```
//! use abwe::core::scenario::{Scenario, SingleHopConfig, CrossKind};
//! use abwe::core::tools::pathload::{Pathload, PathloadConfig};
//! use abwe::netsim::SimDuration;
//!
//! // a 50 Mb/s link carrying 25 Mb/s of Poisson cross traffic
//! let mut scenario = Scenario::single_hop(&SingleHopConfig {
//!     cross: CrossKind::Poisson,
//!     ..SingleHopConfig::default()
//! });
//! scenario.warm_up(SimDuration::from_millis(300));
//!
//! // Pathload reports a variation range (R_L, R_H), not a point
//! let report = Pathload::new(PathloadConfig::quick()).run(&mut scenario);
//! let (lo, hi) = report.range_bps;
//! assert!(lo < hi);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate each of the paper's figures and tables.

pub use abw_core as core;
pub use abw_netsim as netsim;
pub use abw_stats as stats;
pub use abw_tcp as tcp;
pub use abw_trace as trace;
pub use abw_traffic as traffic;
