//! Locate the tight link of a multi-hop path with BFind: sender-only
//! probing that ramps a UDP load while watching per-hop RTTs from ICMP
//! time-exceeded replies.
//!
//! Run with: `cargo run --release --example locate_bottleneck`

use abwe::core::scenario::{CrossKind, HopSpec, Scenario};
use abwe::core::tools::bfind::{Bfind, BfindConfig};
use abwe::netsim::SimDuration;
use abwe::traffic::SizeDist;

fn main() {
    // a 4-hop path; hop 2 is the tight link (avail 18 Mb/s), the rest
    // are lightly loaded
    let hop = |cross_rate: f64| HopSpec {
        capacity_bps: 50e6,
        cross_rate_bps: cross_rate,
        cross: CrossKind::Poisson,
        cross_sizes: SizeDist::Constant(1500),
        prop_delay: SimDuration::from_millis(2),
        queue_bytes: None,
        impairment: None,
    };
    let mut scenario = Scenario::from_hops(vec![hop(8e6), hop(12e6), hop(32e6), hop(5e6)], 42);
    scenario.warm_up(SimDuration::from_millis(500));
    println!(
        "path: 4 hops of 50 Mb/s; per-hop avail-bw = {:?} Mb/s",
        scenario
            .hops
            .iter()
            .map(|h| h.avail_bps() / 1e6)
            .collect::<Vec<_>>()
    );

    let report = Bfind::new(BfindConfig::default()).run(&mut scenario);

    println!("\nload ramp (median per-hop RTT in ms):");
    println!("rate_Mbps   hop0    hop1    hop2    hop3");
    for e in &report.epochs {
        print!("{:>9.0}", e.rate_bps / 1e6);
        for rtt in &e.hop_rtts {
            print!("{:>8.2}", rtt * 1e3);
        }
        println!();
    }

    match report.tight_hop {
        Some(hop) => println!(
            "\nBFind: tight link at hop {hop}, avail-bw ≈ {:.0} Mb/s \
             (configured: hop 2, 18 Mb/s)",
            report.avail_bps / 1e6
        ),
        None => println!("\nBFind: no hop inflated below the rate cap"),
    }
    println!(
        "({} probe + load packets; BFind needs no receiver cooperation \
         but injects the most traffic of all the tools)",
        report.probe_packets
    );
}
