//! Integrating avail-bw estimation with an application — the paper's
//! §4 closing question: *"integrate avail-bw estimation techniques with
//! actual applications, and then examine the effectiveness of these
//! techniques given the actual accuracy and latency constraints of real
//! applications."*
//!
//! A streaming-like sender must pick a constant bitrate for a 10-second
//! transmission over a 50/25 Mb/s bursty path. It measures with
//! Pathload, then tries three policies — the conservative `R_L`, the
//! range midpoint, and the optimistic `R_H` — and we observe what each
//! choice does to the application's own one-way delays. The variation
//! range (Fallacy 9) is exactly the information this decision needs:
//! a point estimate hides the risk the range exposes.
//!
//! Run with: `cargo run --release --example rate_adaptation`

use abwe::core::probe::ProbeRunner;
use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::stream::StreamSpec;
use abwe::core::tools::pathload::{Pathload, PathloadConfig};
use abwe::netsim::SimDuration;
use abwe::stats::trend::median;

fn main() {
    // measure once on the live path
    let mut scenario = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::ParetoOnOff,
        ..SingleHopConfig::default()
    });
    scenario.warm_up(SimDuration::from_millis(500));
    let report = Pathload::new(PathloadConfig::default()).run(&mut scenario);
    let (lo, hi) = report.range_bps;
    println!(
        "Pathload on the 50/25 Mb/s Pareto path: range [{:.1}, {:.1}] Mb/s, \
         {} probe packets, {:.1} s of measurement\n",
        lo / 1e6,
        hi / 1e6,
        report.probe_packets,
        report.elapsed_secs,
    );

    println!(
        "{:>22}  {:>10}  {:>12}  {:>12}  {:>10}",
        "policy", "rate Mb/s", "median OWD", "p99 OWD", "delivered"
    );

    for (name, rate) in [
        ("conservative (R_L)", lo),
        ("midpoint", (lo + hi) / 2.0),
        ("optimistic (R_H)", hi),
        ("reckless (R_H + 20%)", hi * 1.2),
    ] {
        // a fresh identical path for each policy (paired conditions)
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross: CrossKind::ParetoOnOff,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));

        // the "application": one long CBR stream at the chosen rate,
        // instrumented through the probing endpoints
        let spec = StreamSpec::periodic_for_duration(rate, 1200, SimDuration::from_secs(10));
        let receiver = s.receiver;
        let sender = s.sender;
        let mut runner = ProbeRunner::new(sender, receiver);
        runner.drain_timeout = SimDuration::from_secs(3);
        let result = runner.run_stream(&mut s.sim, &spec);

        let owds: Vec<f64> = result.relative_owds();
        let mut sorted = owds.clone();
        sorted.sort_by(f64::total_cmp);
        let p99 = sorted[(sorted.len() as f64 * 0.99) as usize - 1];
        println!(
            "{:>22}  {:>10.1}  {:>9.2} ms  {:>9.2} ms  {:>9.1}%",
            name,
            rate / 1e6,
            median(&owds) * 1e3,
            p99 * 1e3,
            100.0 * (1.0 - result.loss_fraction()),
        );
    }

    println!(
        "\nStreaming at R_L keeps the application's queueing delay flat; at \
         R_H the stream sits inside the avail-bw variation and rides the \
         bursts; beyond R_H the queue grows without bound. The range — not a \
         point — is what lets the application pick its own risk."
    );
}
