//! Quickstart: build the paper's canonical single-hop path (50 Mb/s
//! link, 25 Mb/s of Poisson cross traffic), measure the ground-truth
//! avail-bw, and estimate it with one direct and one iterative tool.
//!
//! Run with: `cargo run --release --example quickstart`

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::tools::direct::{DirectConfig, DirectProber};
use abwe::core::tools::pathload::{Pathload, PathloadConfig};
use abwe::netsim::SimDuration;

fn main() {
    // 1. the path: one 50 Mb/s store-and-forward link, 25 Mb/s of
    //    Poisson cross traffic → avail-bw A = 25 Mb/s
    let mut scenario = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        ..SingleHopConfig::default()
    });
    scenario.warm_up(SimDuration::from_millis(500));
    println!(
        "configured: C = {} Mb/s, A = {} Mb/s",
        scenario.tight_capacity_bps() / 1e6,
        scenario.configured_avail_bps() / 1e6
    );

    // 2. direct probing (Delphi-style): needs the tight-link capacity,
    //    inverts Equation 9 per stream, averages the samples
    let mut runner = scenario.runner();
    let direct = DirectProber::new(DirectConfig::canonical()).run(&mut scenario.sim, &mut runner);
    println!(
        "direct probing:  A ≈ {:.2} Mb/s  ({} packets, {:.2} s of probing, \
         per-sample sd {:.2} Mb/s)",
        direct.avail_bps / 1e6,
        direct.probe_packets,
        direct.elapsed_secs,
        direct.samples.stddev / 1e6,
    );

    // 3. iterative probing (Pathload): no capacity needed; binary-search
    //    on the rate with OWD trend tests, reports a variation range
    let pathload = Pathload::new(PathloadConfig::quick()).run(&mut scenario);
    println!(
        "pathload:        A in [{:.2}, {:.2}] Mb/s  ({} packets, {:.2} s)",
        pathload.range_bps.0 / 1e6,
        pathload.range_bps.1 / 1e6,
        pathload.probe_packets,
        pathload.elapsed_secs,
    );

    // 4. the ground truth, from the link's exact busy periods — over a
    //    probe-free window (while a probing stream is in flight the link
    //    also carries the probe's own load)
    scenario.measure_from = scenario.sim.now();
    scenario.sim.run_for(SimDuration::from_secs(10));
    let truth = scenario.ground_truth(0);
    println!(
        "ground truth:    A = {:.2} Mb/s over a 10 s probe-free window",
        truth.mean() / 1e6
    );
}
