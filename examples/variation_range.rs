//! Analyse the avail-bw *process* of a bursty link: sample path,
//! variance vs averaging timescale (Equations 4/5), and Hurst
//! estimation — the statistical machinery behind Pitfalls 1 and 2.
//!
//! Run with: `cargo run --release --example variation_range`

use abwe::netsim::SimDuration;
use abwe::stats::hurst::variance_time_hurst;
use abwe::stats::timescale::{iid_decay, variance_time};
use abwe::trace::{SyntheticTrace, SyntheticTraceConfig};

fn main() {
    // a 20-second OC-3 trace at ~45% utilisation (the NLANR substitute)
    let config = SyntheticTraceConfig {
        duration: SimDuration::from_secs(20),
        warmup: SimDuration::from_secs(1),
        ..SyntheticTraceConfig::default()
    };
    let trace = SyntheticTrace::generate(&config);
    let p = &trace.process;
    println!(
        "trace: {:.1} s, {} packets, mean avail-bw {:.1} Mb/s (utilisation {:.1}%)\n",
        p.horizon_secs(),
        trace.packets,
        p.mean() / 1e6,
        trace.achieved_utilization * 100.0
    );

    // 1. variability by timescale: Var[A_tau] falls as tau grows, but
    //    slower than the IID 1/k law because the traffic is correlated
    println!("timescale    sd(A_tau) Mb/s    IID prediction from 1 ms");
    let base_ms = 1u64;
    let series: Vec<f64> = p
        .sample_path(base_ms * 1_000_000, base_ms * 1_000_000)
        .into_iter()
        .map(|(_, a)| a / 1e6)
        .collect();
    let base_var = variance_time(&series, &[1])[0].1;
    for k in [1usize, 5, 10, 50, 100, 200] {
        let vt = variance_time(&series, &[k]);
        if let Some(&(_, v)) = vt.first() {
            println!(
                "{:>6} ms    {:>10.2}        {:>10.2}",
                k as u64 * base_ms,
                v.sqrt(),
                iid_decay(base_var, k as f64).sqrt()
            );
        }
    }

    // 2. long-range dependence: the aggregate of Pareto ON-OFF sources
    //    should show H > 0.5
    if let Some(h) = variance_time_hurst(&series, &[1, 2, 4, 8, 16, 32, 64]) {
        println!("\nvariance-time Hurst estimate: H = {h:.2} (H > 0.5 ⇒ long-range dependent)");
    }

    // 3. the variation range at the 10 ms timescale (Figure 6's view)
    let pop = p.population(10_000_000);
    println!(
        "\nA_10ms: mean {:.1} Mb/s, sd {:.1} Mb/s, observed range {:.1} .. {:.1} Mb/s",
        pop.mean() / 1e6,
        pop.stddev() / 1e6,
        pop.min() / 1e6,
        pop.max() / 1e6
    );
    println!(
        "An iterative prober on this link converges to a range of that order \
         — not to a single number (Fallacy 9)."
    );
}
