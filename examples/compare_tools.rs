//! Compare every estimation tool on the same path under the same
//! conditions — the "fair comparison under reproducible and controllable
//! conditions" the paper's summary calls for.
//!
//! Every tool comes from the registry and runs on an identical
//! 50/25 Mb/s Poisson single-hop scenario (fresh replica per tool so
//! probes never interact); the table reports the estimate, the probing
//! overhead in packets, and the measurement latency in simulated
//! seconds.
//!
//! Run with: `cargo run --release --example compare_tools`

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::tools::registry::{self, ToolConfig};
use abwe::netsim::SimDuration;

fn scenario() -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

fn main() {
    println!("tool        estimate (Mb/s)      packets   sim-latency   notes");
    println!("--------    -----------------    -------   -----------   -----");
    let truth = 25.0;
    let config = ToolConfig::default();

    for entry in registry::all() {
        let mut s = scenario();
        let mut tool = entry.build(&config);
        let mut session = s.session();
        let verdict = session.drive(&mut s.sim, tool.as_mut());

        let estimate = match verdict.range_bps() {
            Some((lo, hi)) => format!("[{:>5.2}, {:>5.2}]", lo / 1e6, hi / 1e6),
            None => format!("{:>7.2}", verdict.avail_bps() / 1e6),
        };
        let latency = if verdict.elapsed_secs() > 0.0 {
            format!("{:>8.2} s", verdict.elapsed_secs())
        } else {
            "       -  ".to_string()
        };
        println!(
            "{:<11} {:<20} {:>7}   {latency}   {}",
            entry.name,
            estimate,
            verdict.probe_packets(),
            entry.summary
        );
    }

    println!("\nground truth A = {truth} Mb/s (50 Mb/s link, 25 Mb/s Poisson cross traffic)");
    println!(
        "Note the spread: tools differ in probing overhead, latency, and in \
         what they report (mean vs range vs capacity) — exactly why the paper \
         warns against naive accuracy comparisons."
    );
}
