//! Compare every estimation tool on the same path under the same
//! conditions — the "fair comparison under reproducible and controllable
//! conditions" the paper's summary calls for.
//!
//! Each tool runs on an identical 50/25 Mb/s Poisson single-hop
//! scenario (fresh seed per tool so probes never interact); the table
//! reports the estimate, the probing overhead in packets, and the
//! measurement latency in simulated seconds.
//!
//! Run with: `cargo run --release --example compare_tools`

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::tools::bfind::{Bfind, BfindConfig};
use abwe::core::tools::delphi::{Delphi, DelphiConfig};
use abwe::core::tools::direct::{DirectConfig, DirectProber};
use abwe::core::tools::igi::{Igi, IgiConfig};
use abwe::core::tools::pathchirp::{Pathchirp, PathchirpConfig};
use abwe::core::tools::pathload::{Pathload, PathloadConfig};
use abwe::core::tools::schirp::{Schirp, SchirpConfig};
use abwe::core::tools::spruce::{Spruce, SpruceConfig};
use abwe::core::tools::topp::{Topp, ToppConfig};
use abwe::netsim::SimDuration;

fn scenario() -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

fn main() {
    println!("tool        estimate (Mb/s)      packets   sim-latency   notes");
    println!("--------    -----------------    -------   -----------   -----");
    let truth = 25.0;

    {
        let mut s = scenario();
        let mut r = s.runner();
        let e = DirectProber::new(DirectConfig::canonical()).run(&mut s.sim, &mut r);
        println!(
            "direct      {:>7.2}              {:>7}   {:>8.2} s   Delphi-style trains, needs Ct",
            e.avail_bps / 1e6,
            e.probe_packets,
            e.elapsed_secs
        );
    }
    {
        let mut s = scenario();
        let mut r = s.runner();
        let e = Delphi::new(DelphiConfig::new(50e6)).run(&mut s.sim, &mut r);
        println!(
            "delphi      {:>7.2}              {:>7}   {:>8.2} s   adaptive trains, needs Ct",
            e.avail_bps / 1e6,
            e.probe_packets,
            e.elapsed_secs
        );
    }
    {
        let mut s = scenario();
        let mut r = s.runner();
        let e = Spruce::new(SpruceConfig::new(50e6)).run(&mut s.sim, &mut r);
        println!(
            "spruce      {:>7.2}              {:>7}   {:>8.2} s   100 Poisson pairs, needs Ct",
            e.avail_bps / 1e6,
            e.probe_packets,
            e.elapsed_secs
        );
    }
    {
        let mut s = scenario();
        let mut r = s.runner();
        r.stream_gap = SimDuration::from_millis(5);
        let rep = Topp::new(ToppConfig::default()).run(&mut s.sim, &mut r);
        let ct = rep
            .tight_capacity_bps
            .map(|c| format!("Ct_est {:.1} Mb/s", c / 1e6))
            .unwrap_or_else(|| "no Ct regression".into());
        println!(
            "topp        {:>7.2}              {:>7}        -      linear train sweep; {ct}",
            rep.avail_bps / 1e6,
            rep.probe_packets
        );
    }
    {
        let mut s = scenario();
        let rep = Pathload::new(PathloadConfig::default()).run(&mut s);
        println!(
            "pathload    [{:>5.2}, {:>5.2}]       {:>7}   {:>8.2} s   OWD-trend binary search",
            rep.range_bps.0 / 1e6,
            rep.range_bps.1 / 1e6,
            rep.probe_packets,
            rep.elapsed_secs
        );
    }
    {
        let mut s = scenario();
        let mut r = s.runner();
        let e = Pathchirp::new(PathchirpConfig::default()).run(&mut s.sim, &mut r);
        println!(
            "pathchirp   {:>7.2}              {:>7}   {:>8.2} s   exponential chirps",
            e.avail_bps / 1e6,
            e.probe_packets,
            e.elapsed_secs
        );
    }
    {
        let mut s = scenario();
        let mut r = s.runner();
        let e = Schirp::new(SchirpConfig::default()).run(&mut s.sim, &mut r);
        println!(
            "s-chirp     {:>7.2}              {:>7}   {:>8.2} s   smoothed chirps",
            e.avail_bps / 1e6,
            e.probe_packets,
            e.elapsed_secs
        );
    }
    {
        let mut s = scenario();
        let mut r = s.runner();
        let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
        println!(
            "igi         {:>7.2}              {:>7}        -      gap model at turning point",
            rep.igi_bps / 1e6,
            rep.probe_packets
        );
        println!(
            "ptr         {:>7.2}              {:>7}        -      train rate at turning point",
            rep.ptr_bps / 1e6,
            rep.probe_packets
        );
    }
    {
        let mut s = scenario();
        let rep = Bfind::new(BfindConfig::default()).run(&mut s);
        println!(
            "bfind       {:>7.2}              {:>7}        -      sender-only, locates hop {:?}",
            rep.avail_bps / 1e6,
            rep.probe_packets,
            rep.tight_hop
        );
    }

    println!("\nground truth A = {truth} Mb/s (50 Mb/s link, 25 Mb/s Poisson cross traffic)");
    println!(
        "Note the spread: tools differ in probing overhead, latency, and in \
         what they report (mean vs range) — exactly why the paper warns \
         against naive accuracy comparisons."
    );
}
