//! Why bulk TCP throughput is not the avail-bw (Pitfall 10, Figure 7 in
//! miniature): the same 15 Mb/s of avail-bw yields very different bulk
//! TCP throughput depending on the receiver window and on whether the
//! competing traffic backs off.
//!
//! Run with: `cargo run --release --example tcp_vs_availbw`

use abwe::core::experiments::tcp_throughput::{run, CrossTrafficType, TcpThroughputConfig};
use abwe::netsim::SimDuration;

fn main() {
    let config = TcpThroughputConfig {
        windows: vec![4, 16, 64, 256],
        measure: SimDuration::from_secs(20),
        ..TcpThroughputConfig::default()
    };
    println!(
        "bottleneck {} Mb/s, cross load {} Mb/s  =>  avail-bw {} Mb/s\n",
        config.capacity_bps / 1e6,
        config.cross_rate_bps / 1e6,
        config.avail_bps() / 1e6
    );

    let result = run(&config);
    println!("bulk TCP goodput (Mb/s) by receiver window:");
    print!("{:>24}", "cross traffic \\ Wr");
    for &(wr, _) in &result.curves[0].points {
        print!("{wr:>8}");
    }
    println!();
    for curve in &result.curves {
        print!("{:>24}", format!("{:?}", curve.cross));
        for &(_, g) in &curve.points {
            print!("{g:>8.2}");
        }
        let verdict = match curve.cross {
            CrossTrafficType::ParetoUdp => "unresponsive: TCP capped near A",
            CrossTrafficType::WindowLimitedTcp | CrossTrafficType::ShortTcp => {
                "responsive: TCP can exceed A"
            }
        };
        println!("   {verdict}");
    }
    println!(
        "\nSame avail-bw ({} Mb/s), throughputs from ~1 to far above A — \
         validating an avail-bw estimator against bulk TCP throughput \
         conflates two different metrics.",
        result.avail_mbps
    );
}
