//! Effective bandwidth: the alternative headroom metric the paper
//! points to when discussing the burstiness-induced underestimation of
//! Pitfalls 6 and 7.
//!
//! Three traffic mixes with the SAME mean load (and hence the same
//! avail-bw `A = C(1-u)`) need very different real headroom: Kelly's
//! effective bandwidth `alpha(s)` makes that visible, where the plain
//! avail-bw definition cannot.
//!
//! Run with: `cargo run --release --example effective_bandwidth`

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::netsim::SimDuration;
use abwe::trace::EffectiveBandwidth;

fn main() {
    let tau_ns = 10_000_000; // 10 ms windows
    println!(
        "50 Mb/s link, 25 Mb/s mean cross load, three traffic models;\n\
         effective bandwidth alpha(s) of the load at tau = 10 ms\n"
    );
    println!(
        "{:>14}  {:>10}  {:>10}  {:>12}  {:>12}  {:>14}",
        "model", "mean Mb/s", "peak Mb/s", "alpha(mild s)", "alpha(strict s)", "eff. avail Mb/s"
    );

    for cross in [CrossKind::Cbr, CrossKind::Poisson, CrossKind::ParetoOnOff] {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_secs(1));
        s.sim.run_for(SimDuration::from_secs(30));
        let process = s.ground_truth(0);
        let eb = EffectiveBandwidth::from_process(&process, tau_ns);

        let s_mild = 2e-6;
        let s_strict = 2e-5;
        println!(
            "{:>14}  {:>10.1}  {:>10.1}  {:>12.1}  {:>12.1}  {:>14.1}",
            format!("{cross:?}"),
            eb.mean_rate_bps() / 1e6,
            eb.peak_rate_bps() / 1e6,
            eb.alpha_bps(s_mild) / 1e6,
            eb.alpha_bps(s_strict) / 1e6,
            eb.effective_avail_bps(50e6, s_strict) / 1e6,
        );
    }

    println!(
        "\nAll three rows have avail-bw A = 25 Mb/s by the paper's definition \
         (Equation 2).\nThe burstier the traffic, the higher alpha(s) climbs \
         above the mean — and the\nless of the nominal 25 Mb/s a delay-sensitive \
         application can actually use.\nThis is why probing tools 'underestimate' \
         on bursty paths (Figure 3): they\nfeel the queueing that the avail-bw \
         definition ignores."
    );
}
