//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact (small) API surface the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`RngExt::random`] for `f64`/`f32`/integers/`bool`,
//! * [`RngExt::random_range`] over half-open and inclusive ranges.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and with far better equidistribution than a bare LCG. It is
//! **not** the upstream `StdRng` (ChaCha12): streams differ from real
//! `rand`, which only matters for tests that hard-code drawn values.
//! Everything in this workspace treats the RNG as an opaque seeded
//! stream, which is the property this crate preserves.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let u: $t = Standard::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let u: $t = Standard::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience draws on any [`Rng`], mirroring `rand`'s modern method
/// names (`random`, `random_range`, `random_bool`).
pub trait RngExt: Rng {
    /// A uniform value of `T` (`f64`/`f32` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (SplitMix64-seeded).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5u64..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&z));
            let f = rng.random_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }
}
