//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/`vec`/`option` strategies,
//! `prop_map`, and the `prop_assert*` family. Cases are generated from a
//! seed derived from the test's name, so every run explores the same
//! inputs — failures are reproducible without regression files (and the
//! `.proptest-regressions` files upstream proptest writes are ignored).
//!
//! There is **no shrinking**: a failing case reports the assertion
//! message of the raw generated input.

pub mod strategy;
pub mod test_runner;

/// `prop::collection`, `prop::option`, etc. — the namespace the prelude
/// re-exports under `prop`.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::vec;
        pub use crate::strategy::collection::SizeRange;
    }
    pub mod option {
        pub use crate::strategy::option::of;
    }
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The test-defining macro. Mirrors upstream's grammar for the form used
/// in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, ys in prop::collection::vec(0f64..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while runner.more_cases() {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, runner.rng());
                )*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.finish_case(result);
            }
        }
    )*};
}
