//! Value-generation strategies: numeric ranges, tuples, collections,
//! `Option`, constants, and `prop_map`.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking —
/// `generate` draws a single concrete value.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing the same value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    //! `Vec` strategies.

    use super::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact count or a
    /// half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` of the inner strategy three times out of four, `None`
    /// otherwise (upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(1)
    }

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&x));
            let f = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
            let v = collection::vec(0u64..10, 2..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
            let (a, b) = (0u64..4, 1u64..3).generate(&mut r);
            assert!(a < 4 && (1..3).contains(&b));
        }
    }

    #[test]
    fn map_and_option() {
        let mut r = rng();
        let doubled = (1u32..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            let d = doubled.generate(&mut r);
            assert!(d % 2 == 0 && (2..10).contains(&d));
            let o = option::of(0u32..3).generate(&mut r);
            if let Some(v) = o {
                assert!(v < 3);
            }
        }
    }
}
