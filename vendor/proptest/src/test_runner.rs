//! Case execution: configuration, the per-test RNG, and pass/fail
//! bookkeeping.

/// How a single generated case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition; it does
    /// not count towards the configured number of cases.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (only the knob this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration demanding `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic xoshiro256++ stream used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub(crate) fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Drives one property test: a fixed case budget, a rejection cap, and a
/// name-derived seed so runs are reproducible.
pub struct TestRunner {
    rng: TestRng,
    cases_target: u32,
    cases_done: u32,
    rejects: u32,
    name: &'static str,
}

/// FNV-1a, so the per-test stream is stable across runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRunner {
    /// Maximum rejected cases before the test errors out (mirrors
    /// upstream's global rejection cap).
    const MAX_REJECTS: u32 = 65_536;

    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner {
            rng: TestRng::from_seed(fnv1a(name.as_bytes())),
            cases_target: config.cases,
            cases_done: 0,
            rejects: 0,
            name,
        }
    }

    /// True while more successful cases are needed.
    pub fn more_cases(&self) -> bool {
        self.cases_done < self.cases_target
    }

    /// The RNG driving generation.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Books one executed case; panics on failure so the surrounding
    /// `#[test]` fails with the assertion message.
    pub fn finish_case(&mut self, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => self.cases_done += 1,
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                assert!(
                    self.rejects < Self::MAX_REJECTS,
                    "{}: too many prop_assume! rejections ({})",
                    self.name,
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{}: property failed at case {}: {}",
                    self.name, self.cases_done, msg
                );
            }
        }
    }
}
