//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `benchmark_group` / `bench_function` / `iter` surface
//! with a plain wall-clock measurement loop: a short warm-up, then
//! batches until a time budget is spent, reporting the per-iteration
//! median, minimum and mean. No plots, no statistics beyond that — but
//! the same bench sources compile and produce comparable numbers.
//!
//! When invoked by `cargo test` (which passes `--test` to
//! `harness = false` targets), each benchmark body runs exactly once so
//! the suite stays fast.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as upstream criterion offers.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark registry and measurement settings.
pub struct Criterion {
    /// Run each body once, without timing (test mode).
    smoke_only: bool,
    /// Per-benchmark measurement budget.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion {
            smoke_only,
            budget: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self, name, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; here it only scales
    /// the time budget of the group's benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let ms = (15 * n as u64).clamp(300, 3000);
        self.criterion.budget = Duration::from_millis(ms);
        self
    }

    /// Runs `f` as the benchmark `name` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(&mut self) {}
}

fn run_one(criterion: &Criterion, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        smoke_only: criterion.smoke_only,
        budget: criterion.budget,
        samples: Vec::new(),
    };
    f(&mut b);
    if criterion.smoke_only {
        println!("{name}: ok (smoke)");
        return;
    }
    b.samples.sort_unstable();
    if b.samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let mean = b.samples.iter().sum::<u128>() / b.samples.len() as u128;
    println!(
        "{name}: median {}  min {}  mean {}  ({} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean),
        b.samples.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to the benchmark closure; `iter` measures the workload.
pub struct Bencher {
    smoke_only: bool,
    budget: Duration,
    samples: Vec<u128>,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording per-call wall-clock time,
    /// until the measurement budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            std_black_box(routine());
            return;
        }
        // warm-up: one call, also used to size nothing — timings are
        // per-call, so slow simulation benches yield few samples and
        // fast kernels yield many
        std_black_box(routine());
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed().as_nanos());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }
}

/// Declares the benchmark groups (mirrors upstream's macro shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
