//! Property-based tests of the probing layer: stream construction,
//! measurement invariants over random scenarios, and TCP conservation.

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::stream::StreamSpec;
use abwe::netsim::{FlowId, LinkConfig, SimDuration, SimTime, Simulator};
use abwe::tcp::{TcpConfig, TcpSender, TcpSink};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stream offsets are strictly increasing and start at zero, for
    /// every stream family and parameterisation.
    #[test]
    fn stream_offsets_monotone(
        rate_mbps in 1.0f64..200.0,
        size in 64u32..1500,
        count in 2u32..64,
        gamma in 1.05f64..2.0,
    ) {
        // keep the chirp's top rate within the nanosecond clock
        let chirp_count = count.min(
            (2.0 + (1e9 / (rate_mbps * 1e6)).ln() / gamma.ln()).floor().max(2.0) as u32,
        );
        for spec in [
            StreamSpec::Periodic { rate_bps: rate_mbps * 1e6, size, count },
            StreamSpec::Pair { rate_bps: rate_mbps * 1e6, size },
            StreamSpec::Chirp {
                start_rate_bps: rate_mbps * 1e6,
                gamma,
                size,
                count: chirp_count,
            },
        ] {
            let offsets = spec.offsets();
            prop_assert_eq!(offsets.len(), spec.count() as usize);
            prop_assert_eq!(offsets[0], SimDuration::ZERO);
            for w in offsets.windows(2) {
                prop_assert!(w[1] > w[0], "offsets must strictly increase");
            }
            prop_assert_eq!(spec.duration(), *offsets.last().unwrap());
        }
    }

    /// A periodic stream's realised rate matches its nominal rate.
    #[test]
    fn periodic_rate_is_exact(
        rate_mbps in 1.0f64..500.0,
        size in 64u32..1500,
        count in 3u32..128,
    ) {
        let spec = StreamSpec::Periodic { rate_bps: rate_mbps * 1e6, size, count };
        let duration = spec.duration().as_secs_f64();
        let realised = (count - 1) as f64 * size as f64 * 8.0 / duration;
        prop_assert!((realised - rate_mbps * 1e6).abs() / (rate_mbps * 1e6) < 1e-3);
    }

    /// Chirp pair rates grow by gamma each step, across the whole range.
    #[test]
    fn chirp_geometry(
        start_mbps in 0.5f64..50.0,
        gamma in 1.05f64..1.8,
        count in 4u32..40,
    ) {
        // cap the top probed rate at 2 Gb/s so gaps stay well above the
        // nanosecond clock and ratios are not quantised by rounding
        prop_assume!(start_mbps * 1e6 * gamma.powi(count as i32 - 2) < 2e9);
        let spec = StreamSpec::Chirp {
            start_rate_bps: start_mbps * 1e6,
            gamma,
            size: 1000,
            count,
        };
        for k in 0..(count as usize - 2) {
            let ratio = spec.pair_rate_bps(k + 1) / spec.pair_rate_bps(k);
            prop_assert!(
                (ratio - gamma).abs() / gamma < 0.02,
                "pair {k}: ratio {ratio} vs gamma {gamma}"
            );
        }
    }

    /// On any single-hop scenario, a received stream's measurements obey
    /// basic sanity: Ro ≤ capacity (+rounding), OWDs positive, loss
    /// accounting consistent.
    #[test]
    fn stream_measurement_sanity(
        cross_rate_mbps in 0.0f64..40.0,
        probe_rate_mbps in 5.0f64..60.0,
        count in 10u32..80,
        seed in 0u64..1000,
    ) {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross_rate_bps: cross_rate_mbps * 1e6,
            cross: CrossKind::Poisson,
            seed,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(100));
        let mut runner = s.runner();
        let spec = StreamSpec::Periodic {
            rate_bps: probe_rate_mbps * 1e6,
            size: 1500,
            count,
        };
        let r = runner.run_stream(&mut s.sim, &spec);
        prop_assert_eq!(r.received() + r.lost(), count as usize);
        // unbounded queues: nothing may be lost
        prop_assert_eq!(r.lost(), 0);
        if let Some(ro) = r.output_rate_bps() {
            prop_assert!(ro <= 50e6 * 1.01, "Ro {ro} exceeds capacity");
            prop_assert!(ro > 0.0);
        }
        for d in r.owds() {
            prop_assert!(d > 0.0, "non-positive OWD {d}");
        }
        // relative OWDs have minimum exactly zero
        let rel = r.relative_owds();
        let min = rel.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(min.abs() < 1e-15);
    }

    /// TCP conservation: the sink's cumulative ACK never exceeds what
    /// the sender transmitted, and goodput never exceeds capacity.
    #[test]
    fn tcp_conservation(
        capacity_mbps in 2u32..50,
        buffer_pkts in 4u64..64,
        rwnd in 1u64..64,
        prop_ms in 1u64..30,
    ) {
        let capacity = capacity_mbps as f64 * 1e6;
        let mut sim = Simulator::new();
        let link = sim.add_link(
            LinkConfig::new(capacity, SimDuration::from_millis(prop_ms))
                .with_queue_packets(buffer_pkts, 1500),
        );
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(TcpSink::new(SimDuration::from_millis(prop_ms))));
        let sender = sim.add_agent(Box::new(TcpSender::new(
            TcpConfig::bulk(path, sink, FlowId(1)).with_rwnd(rwnd),
        )));
        let horizon = SimTime::ZERO + SimDuration::from_secs(5);
        sim.run_until(horizon);
        let snd: &TcpSender = sim.agent(sender);
        let rcv: &TcpSink = sim.agent(sink);
        prop_assert!(rcv.cumulative_ack() <= snd.transmitted_segments);
        prop_assert!(snd.acked_segments <= snd.transmitted_segments);
        let goodput = snd.goodput_bps(horizon);
        prop_assert!(
            goodput <= capacity * 1.02,
            "goodput {goodput} over a {capacity} link"
        );
        // the connection must make progress on any of these paths
        prop_assert!(snd.acked_segments > 0, "no progress at all");
    }
}
