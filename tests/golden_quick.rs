//! Golden regression tests for the `--quick` CSV artifacts.
//!
//! `shootout --quick --csv` and `table1 --quick --csv` must keep
//! producing the exact bytes checked in under `tests/golden/` — the
//! tables are deterministic (seeded simulations, fixed rounding), so
//! any diff is a behaviour change: an estimator edit, a scenario edit,
//! an RNG change, or an executor ordering bug. The tests render through
//! the same `abw_bench::reports` code path the binaries use.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! ABW_UPDATE_GOLDEN=1 cargo test --test golden_quick
//! ```
//! then commit the diff under `tests/golden/` with the reason.

use std::path::Path;

use abw_bench::reports::{shootout_table, table1_table};
use abw_bench::Format;
use abw_core::experiments::pairs_vs_trains::{self, PairsVsTrainsConfig};
use abw_core::experiments::shootout::{self, ShootoutConfig};

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("ABW_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run with ABW_UPDATE_GOLDEN=1 to create it)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the checked-in golden output;\n\
         if the change is intentional, regenerate with \
         ABW_UPDATE_GOLDEN=1 and commit the diff"
    );
}

#[test]
fn shootout_quick_csv_matches_golden() {
    let result = shootout::run(&ShootoutConfig::quick());
    check_golden(
        "shootout_quick.csv",
        &shootout_table(&result).render(Format::Csv),
    );
}

#[test]
fn table1_quick_csv_matches_golden() {
    let result = pairs_vs_trains::run(&PairsVsTrainsConfig::quick());
    check_golden(
        "table1_quick.csv",
        &table1_table(&result).render(Format::Csv),
    );
}
