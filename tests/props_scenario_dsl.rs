//! Scenario DSL round-trip properties and deny-fixtures.
//!
//! The round-trip property leans on the fuzzer's own generator: every
//! spec `gen_spec` can produce must render with `to_spec` and reparse
//! to an identical `ScenarioSpec`, and the canonical form must be a
//! fixpoint. The deny-fixtures pin exact `file:line:col` diagnostics
//! for committed malformed specs, so error positions cannot drift
//! silently.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use abwe::core::scenario::dsl::ScenarioSpec;
use abwe::core::scenario::fuzz;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse(to_spec(s)) == s for every generated spec.
    #[test]
    fn round_trip_is_exact(seed in 0u64..1 << 48, index in 0u32..64) {
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let spec = fuzz::gen_spec(&mut rng, seed, index);
        let rendered = spec.to_spec();
        let reparsed = ScenarioSpec::parse(&rendered, "round-trip.scn")
            .expect("generated spec must reparse");
        prop_assert_eq!(&spec, &reparsed, "canonical form:\n{}", rendered);
        // canonical form is a fixpoint
        prop_assert_eq!(rendered, reparsed.to_spec());
    }
}

fn parse_fixture(
    name: &str,
) -> (
    String,
    Result<ScenarioSpec, abwe::core::scenario::dsl::ParseError>,
) {
    let path = format!("tests/fixtures/scn/{name}");
    let src = std::fs::read_to_string(&path).expect("fixture must exist");
    let result = ScenarioSpec::parse(&src, &path);
    (path, result)
}

#[test]
fn deny_fixture_unknown_key() {
    let (path, result) = parse_fixture("unknown_key.scn");
    let e = result.expect_err("unknown key must be rejected");
    assert_eq!(
        e.to_string(),
        format!(
            "{path}:4:1: unknown key `wat` (expected seeds, warmup, rounds, quick, tools, \
             or a `hop` line)"
        ),
    );
}

#[test]
fn deny_fixture_loss_out_of_range() {
    let (path, result) = parse_fixture("loss_out_of_range.scn");
    let e = result.expect_err("loss above 1 must be rejected");
    assert_eq!(e.file, path);
    assert_eq!((e.line, e.col), (4, 30), "{e}");
    assert!(e.message.contains("out of [0, 1]"), "{e}");
}

#[test]
fn deny_fixture_duplicate_hop_key() {
    let (path, result) = parse_fixture("dup_hop_key.scn");
    let e = result.expect_err("duplicate hop key must be rejected");
    assert_eq!(e.file, path);
    assert_eq!((e.line, e.col), (4, 35), "{e}");
    assert_eq!(
        e.message,
        "duplicate hop key `capacity` (each key may appear once)"
    );
}
