//! The packet simulator must agree with the paper's fluid model
//! (Equations 6–9) when the cross traffic is CBR — the packet-level
//! system closest to fluid. This pins the simulator's correctness to
//! the closed forms the whole estimation area is built on.

use abwe::core::fluid;
use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::stream::StreamSpec;
use abwe::netsim::SimDuration;
use abwe::stats::regression::linear_fit_indexed;

const CT: f64 = 50e6;
const AVAIL: f64 = 25e6;

fn cbr_scenario() -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Cbr,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

#[test]
fn output_rate_matches_equation_8_across_rates() {
    let mut s = cbr_scenario();
    let mut runner = s.runner();
    for ri in [28e6, 32e6, 36e6, 40e6, 44e6] {
        let spec = StreamSpec::Periodic {
            rate_bps: ri,
            size: 1500,
            count: 200,
        };
        let r = runner.run_stream(&mut s.sim, &spec);
        let ro = r.output_rate_bps().expect("stream received");
        let fluid_ro = fluid::output_rate(CT, ri, AVAIL);
        assert!(
            (ro - fluid_ro).abs() / fluid_ro < 0.04,
            "Ri = {} Mb/s: Ro = {:.2} Mb/s, fluid predicts {:.2} Mb/s",
            ri / 1e6,
            ro / 1e6,
            fluid_ro / 1e6
        );
    }
}

#[test]
fn no_expansion_below_the_avail_bw() {
    let mut s = cbr_scenario();
    let mut runner = s.runner();
    for ri in [10e6, 18e6, 24e6] {
        let spec = StreamSpec::Periodic {
            rate_bps: ri,
            size: 1500,
            count: 150,
        };
        let r = runner.run_stream(&mut s.sim, &spec);
        let ratio = r.rate_ratio().expect("stream received");
        assert!(ratio > 0.995, "Ri = {} Mb/s < A: Ro/Ri = {ratio}", ri / 1e6);
    }
}

#[test]
fn owd_slope_matches_equation_7() {
    let mut s = cbr_scenario();
    let mut runner = s.runner();
    let ri = 40e6;
    let spec = StreamSpec::Periodic {
        rate_bps: ri,
        size: 1500,
        count: 200,
    };
    let r = runner.run_stream(&mut s.sim, &spec);
    let owds = r.owds();
    let fit = linear_fit_indexed(&owds).expect("enough packets");
    let predicted = fluid::owd_increase_per_packet(1500.0, CT, ri, AVAIL);
    assert!(
        (fit.slope - predicted).abs() / predicted < 0.08,
        "OWD slope {:.3} us/pkt vs Equation 7's {:.3} us/pkt",
        fit.slope * 1e6,
        predicted * 1e6
    );
    assert!(
        fit.r2 > 0.95,
        "OWD growth should be nearly linear, r2 = {}",
        fit.r2
    );
}

#[test]
fn direct_probing_inversion_recovers_avail_bw() {
    let mut s = cbr_scenario();
    let mut runner = s.runner();
    for ri in [30e6, 40e6] {
        let spec = StreamSpec::Periodic {
            rate_bps: ri,
            size: 1500,
            count: 200,
        };
        let r = runner.run_stream(&mut s.sim, &spec);
        let ro = r.output_rate_bps().expect("stream received");
        let est = fluid::direct_probing_estimate(CT, ri, ro);
        assert!(
            (est - AVAIL).abs() / AVAIL < 0.05,
            "Ri = {} Mb/s: estimate {:.2} Mb/s",
            ri / 1e6,
            est / 1e6
        );
    }
}

#[test]
fn queue_growth_matches_equation_6() {
    // send a long overloading stream and check the queue grows by
    // (Ri - A)/Ri * L per probing packet, via the final OWD
    let mut s = cbr_scenario();
    let mut runner = s.runner();
    let ri = 40e6;
    let n = 300u32;
    let spec = StreamSpec::Periodic {
        rate_bps: ri,
        size: 1500,
        count: n,
    };
    let r = runner.run_stream(&mut s.sim, &spec);
    let owds = r.owds();
    let total_growth_secs = owds.last().unwrap() - owds.first().unwrap();
    let per_packet_bits = fluid::queue_growth_per_packet(1500.0, ri, AVAIL);
    let predicted_secs = per_packet_bits * (n - 1) as f64 / CT;
    assert!(
        (total_growth_secs - predicted_secs).abs() / predicted_secs < 0.08,
        "queue grew {:.3} ms, Equation 6 predicts {:.3} ms",
        total_growth_secs * 1e3,
        predicted_secs * 1e3
    );
}
