//! Golden equivalence pin for the estimation tools.
//!
//! `tests/golden/tools_pre_refactor.csv` was generated from the
//! pre-refactor blocking `run()` implementations (one row per registry
//! tool and seed, `avail_bps` printed with `{}` so the shortest
//! round-trip representation pins the exact f64 bits). The test drives
//! every tool through the [`registry`] and the session driver, proving
//! the resumable state-machine rewrite reproduces every estimate and
//! packet count bit-identically.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! ABW_UPDATE_GOLDEN=1 cargo test --test golden_tools
//! ```
//! then commit the diff under `tests/golden/` with the reason.

use std::fmt::Write as _;
use std::path::Path;

use abw_netsim::SimDuration;
use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::tools::registry::{self, ToolConfig};

const SEEDS: [u64; 3] = [101, 202, 303];

fn fresh(seed: u64) -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("ABW_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run with ABW_UPDATE_GOLDEN=1 to create it)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the pre-refactor pin;\n\
         the state machines must reproduce the blocking implementations \
         bit-identically — if the change is intentional, regenerate with \
         ABW_UPDATE_GOLDEN=1 and commit the diff"
    );
}

/// Every registry tool, three seeds, quick settings: the estimates and
/// packet counts must match the pre-refactor `run()` loops exactly.
#[test]
fn state_machines_match_pre_refactor_goldens() {
    let config = ToolConfig::quick();
    let mut csv = String::from("tool,seed,avail_bps,probe_packets\n");
    for entry in registry::all() {
        for &seed in &SEEDS {
            let mut s = fresh(seed);
            let mut tool = entry.build(&config);
            let mut session = s.session();
            let verdict = session.drive(&mut s.sim, tool.as_mut());
            writeln!(
                csv,
                "{},{seed},{},{}",
                entry.name,
                verdict.avail_bps(),
                verdict.probe_packets()
            )
            .expect("write csv row");
        }
    }
    check_golden("tools_pre_refactor.csv", &csv);
}
