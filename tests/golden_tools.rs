//! Golden equivalence pin for the estimation tools.
//!
//! `tests/golden/tools_pre_refactor.csv` was generated from the
//! pre-refactor blocking `run()` implementations (one row per registry
//! tool and seed, `avail_bps` printed with `{}` so the shortest
//! round-trip representation pins the exact f64 bits). The test proves
//! the resumable state-machine rewrite reproduces every estimate and
//! packet count bit-identically.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! ABW_UPDATE_GOLDEN=1 cargo test --test golden_tools
//! ```
//! then commit the diff under `tests/golden/` with the reason.

use std::fmt::Write as _;
use std::path::Path;

use abw_netsim::SimDuration;
use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::tools::bfind::{Bfind, BfindConfig};
use abwe::core::tools::capacity::{CapacityConfig, CapacityProber};
use abwe::core::tools::delphi::{Delphi, DelphiConfig};
use abwe::core::tools::direct::{DirectConfig, DirectProber};
use abwe::core::tools::igi::{Igi, IgiConfig};
use abwe::core::tools::pathchirp::{Pathchirp, PathchirpConfig};
use abwe::core::tools::pathload::{Pathload, PathloadConfig};
use abwe::core::tools::schirp::{Schirp, SchirpConfig};
use abwe::core::tools::spruce::{Spruce, SpruceConfig};
use abwe::core::tools::topp::{Topp, ToppConfig};

const SEEDS: [u64; 3] = [101, 202, 303];

fn fresh(seed: u64) -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("ABW_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run with ABW_UPDATE_GOLDEN=1 to create it)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the pre-refactor pin;\n\
         the state machines must reproduce the blocking implementations \
         bit-identically — if the change is intentional, regenerate with \
         ABW_UPDATE_GOLDEN=1 and commit the diff"
    );
}

/// Every registry tool, three seeds, quick settings: the estimates and
/// packet counts must match the pre-refactor `run()` loops exactly.
#[test]
fn state_machines_match_pre_refactor_goldens() {
    type ToolFn = Box<dyn Fn(&mut Scenario) -> (f64, u64)>;
    let ct = 50e6;
    let tools: Vec<(&'static str, ToolFn)> = vec![
        (
            "direct",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = DirectProber::new(DirectConfig {
                    streams: 20,
                    ..DirectConfig::canonical()
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets)
            }),
        ),
        (
            "delphi",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Delphi::new(DelphiConfig {
                    trains: 15,
                    ..DelphiConfig::new(ct)
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets)
            }),
        ),
        (
            "spruce",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Spruce::new(SpruceConfig {
                    pairs: 50,
                    ..SpruceConfig::new(ct)
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets)
            }),
        ),
        (
            "topp",
            Box::new(move |s| {
                let mut r = s.runner();
                r.stream_gap = SimDuration::from_millis(5);
                let rep = Topp::new(ToppConfig {
                    step_bps: 3e6,
                    streams_per_rate: 3,
                    ..ToppConfig::default()
                })
                .run(&mut s.sim, &mut r);
                (rep.avail_bps, rep.probe_packets)
            }),
        ),
        (
            "pathload",
            Box::new(move |s| {
                let rep = Pathload::new(PathloadConfig::quick()).run(s);
                (
                    (rep.range_bps.0 + rep.range_bps.1) / 2.0,
                    rep.probe_packets,
                )
            }),
        ),
        (
            "pathchirp",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Pathchirp::new(PathchirpConfig {
                    chirps: 15,
                    ..PathchirpConfig::default()
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets)
            }),
        ),
        (
            "schirp",
            Box::new(move |s| {
                let mut r = s.runner();
                let e = Schirp::new(SchirpConfig {
                    chirps: 15,
                    ..SchirpConfig::default()
                })
                .run(&mut s.sim, &mut r);
                (e.avail_bps, e.probe_packets)
            }),
        ),
        (
            "igi",
            Box::new(move |s| {
                let mut r = s.runner();
                let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
                (rep.igi_bps, rep.probe_packets)
            }),
        ),
        (
            "ptr",
            Box::new(move |s| {
                let mut r = s.runner();
                let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
                (rep.ptr_bps, rep.probe_packets)
            }),
        ),
        (
            "bfind",
            Box::new(move |s| {
                let rep = Bfind::new(BfindConfig::default()).run(s);
                (rep.avail_bps, rep.probe_packets)
            }),
        ),
        (
            "capacity",
            Box::new(move |s| {
                let mut r = s.runner();
                let rep = CapacityProber::new(CapacityConfig::default()).run(&mut s.sim, &mut r);
                (rep.capacity_bps, rep.probe_packets)
            }),
        ),
    ];

    let mut csv = String::from("tool,seed,avail_bps,probe_packets\n");
    for (name, tool) in &tools {
        for &seed in &SEEDS {
            let mut s = fresh(seed);
            let (avail_bps, probe_packets) = tool(&mut s);
            writeln!(csv, "{name},{seed},{avail_bps},{probe_packets}").expect("write csv row");
        }
    }
    check_golden("tools_pre_refactor.csv", &csv);
}
