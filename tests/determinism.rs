//! Determinism: a simulation is a pure function of its configuration
//! and seeds. Every experiment in the repo relies on this for
//! reproducibility (DESIGN.md §6).

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::stream::StreamSpec;
use abwe::core::tools::pathload::{Pathload, PathloadConfig};
use abwe::netsim::SimDuration;
use abwe::trace::{SyntheticTrace, SyntheticTraceConfig};

fn scenario(seed: u64) -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::ParetoOnOff,
        seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

#[test]
fn identical_seeds_identical_streams() {
    let spec = StreamSpec::Periodic {
        rate_bps: 30e6,
        size: 1500,
        count: 100,
    };
    let run = |seed| {
        let mut s = scenario(seed);
        let mut runner = s.runner();
        let r = runner.run_stream(&mut s.sim, &spec);
        (r.owds(), r.output_rate_bps())
    };
    let (owds_a, ro_a) = run(7);
    let (owds_b, ro_b) = run(7);
    assert_eq!(owds_a, owds_b, "same seed must give identical OWDs");
    assert_eq!(ro_a, ro_b);

    let (owds_c, _) = run(8);
    assert_ne!(owds_a, owds_c, "different seeds must differ");
}

#[test]
fn identical_seeds_identical_pathload_ranges() {
    let run = |seed| {
        let mut s = scenario(seed);
        Pathload::new(PathloadConfig::quick()).run(&mut s).range_bps
    };
    assert_eq!(run(3), run(3));
}

#[test]
fn trace_generation_is_reproducible() {
    let cfg = SyntheticTraceConfig {
        duration: SimDuration::from_secs(5),
        warmup: SimDuration::from_secs(1),
        ..SyntheticTraceConfig::default()
    };
    let a = SyntheticTrace::generate(&cfg);
    let b = SyntheticTrace::generate(&cfg);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.process.mean(), b.process.mean());
    // and the busy structure matches at fine grain
    for t in (0..40).map(|i| 1_100_000_000u64 + i * 100_000_000) {
        assert_eq!(
            a.process.busy_ns(t, t + 10_000_000),
            b.process.busy_ns(t, t + 10_000_000)
        );
    }
}
