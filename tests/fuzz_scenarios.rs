//! End-to-end contract of the scenario fuzzer.
//!
//! 1. Bit-reproducibility: the same seed and count produce the same
//!    report fingerprint on every run and for every worker count —
//!    `fuzz_scenarios --seed S --count N` is a stable CI artifact.
//! 2. Bug-finding: a deliberately injected invariant violation is
//!    caught, shrunk to a minimal spec, and written as a reproducer
//!    file in the committed format that parses back to the shrunk spec.

use std::path::Path;

use abwe::core::scenario::dsl::{ScenarioSpec, SpecOutcome};
use abwe::core::scenario::fuzz::{self, FuzzConfig};

#[test]
fn fingerprint_is_reproducible_across_runs_and_worker_counts() {
    // seed 3 generates two light scenarios (~seconds per sweep) — some
    // seeds land on 99%-utilisation multi-hop specs that take minutes,
    // which is fuzz-run budget, not unit-test budget
    let mut config = FuzzConfig::new(3, 2);
    config.jobs = 1;
    let first = fuzz::run(&config);
    assert!(
        first.failures.is_empty(),
        "clean seed must produce no failures: {:?}",
        first
            .failures
            .iter()
            .map(|f| &f.message)
            .collect::<Vec<_>>()
    );
    assert_eq!(first.scenarios, 2);
    assert!(first.outcomes > 0);

    let second = fuzz::run(&config);
    assert_eq!(first.fingerprint, second.fingerprint, "same run, same bits");

    config.jobs = 4;
    let parallel = fuzz::run(&config);
    assert_eq!(
        first.fingerprint, parallel.fingerprint,
        "worker count must not change the verdicts"
    );
}

#[test]
fn scenario_budget_times_out_cells_without_failing_and_changes_the_fingerprint() {
    let mut unbounded = FuzzConfig::new(3, 2);
    unbounded.jobs = 1;
    let baseline = fuzz::run(&unbounded);
    assert_eq!(baseline.timeouts, 0);

    // 1 simulated millisecond fits no estimation round: every cell
    // times out, none of that is a failure, and the fingerprint moves
    // (the budget and the missing verdicts are both part of it)
    let mut bounded = unbounded.clone();
    bounded.max_scenario_ms = Some(1);
    let report = fuzz::run(&bounded);
    assert!(report.failures.is_empty(), "timeouts must not be failures");
    assert!(report.timeouts > 0, "1 ms must time out every cell");
    assert_eq!(report.outcomes, 0);
    assert_ne!(
        report.fingerprint, baseline.fingerprint,
        "bounded and unbounded runs are different experiments"
    );

    // and the bounded run is reproducible too
    let again = fuzz::run(&bounded);
    assert_eq!(report.fingerprint, again.fingerprint);
    assert_eq!(report.timeouts, again.timeouts);
}

fn injected_violation(_spec: &ScenarioSpec, _outcomes: &[SpecOutcome]) -> Result<(), String> {
    Err("injected invariant violation".to_string())
}

#[test]
fn injected_violation_is_caught_shrunk_and_reproduced() {
    let repro_dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fuzz-repros");
    let mut config = FuzzConfig::new(3, 1);
    config.jobs = 1;
    config.shrink_budget = 12;
    config.repro_dir = Some(repro_dir.clone());
    config.extra_check = Some(injected_violation);

    let report = fuzz::run(&config);
    assert_eq!(report.failures.len(), 1, "the violation must be caught");
    let failure = &report.failures[0];
    assert!(failure.message.contains("injected invariant violation"));

    // shrunk to the minimum the injected check allows: one hop, one
    // seed, one tool, one round
    assert_eq!(failure.shrunk.hops.len(), 1);
    assert_eq!(failure.shrunk.seeds.len(), 1);
    assert_eq!(failure.shrunk.tools.len(), 1);
    assert_eq!(failure.shrunk.rounds, 1);
    assert!(failure.shrink_evals > 0);

    // the reproducer file is the shrunk spec in committed format
    let path = failure.repro_path.as_ref().expect("reproducer written");
    assert!(path.starts_with(&repro_dir));
    let src = std::fs::read_to_string(path).expect("reproducer readable");
    let reparsed =
        ScenarioSpec::parse(&src, path.to_str().unwrap()).expect("reproducer must parse");
    assert_eq!(&reparsed, &failure.shrunk);
    assert!(reparsed.name.ends_with("-min"), "got `{}`", reparsed.name);
}
