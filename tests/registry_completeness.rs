//! The registry must stay in lockstep with the `tools/` directory: a
//! new estimator module that forgets its registry entry silently drops
//! out of the shootout, the golden pin, the tracking experiment and the
//! examples. This test enumerates the source tree at run time, so adding
//! `tools/foo.rs` without registering it fails CI.

use std::collections::BTreeSet;
use std::path::Path;

use abwe::core::tools::registry::{self, ToolConfig};
use abwe::core::tools::Action;

/// The module stems under `crates/core/src/tools/` that implement
/// estimators (everything except the trait/driver plumbing).
fn estimator_modules() -> BTreeSet<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src/tools");
    std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| {
            p.file_stem()
                .expect("rs file has a stem")
                .to_string_lossy()
                .into_owned()
        })
        .filter(|stem| stem != "mod" && stem != "registry")
        .collect()
}

#[test]
fn every_tool_module_has_a_registry_entry() {
    let modules = estimator_modules();
    assert!(!modules.is_empty(), "tools/ directory not found");
    let registered: BTreeSet<String> = registry::all()
        .iter()
        .map(|e| e.module.to_string())
        .collect();
    for module in &modules {
        assert!(
            registered.contains(module),
            "tools/{module}.rs has no registry entry — add it to \
             `registry::TOOLS` so the shootout, golden pin and tracking \
             experiment cover it"
        );
    }
    for module in &registered {
        assert!(
            modules.contains(module),
            "registry entry points at tools/{module}.rs, which does not exist"
        );
    }
}

#[test]
fn names_are_unique_and_kebab_case() {
    let mut seen = BTreeSet::new();
    for entry in registry::all() {
        assert!(
            seen.insert(entry.name),
            "duplicate registry name `{}`",
            entry.name
        );
        assert!(
            !entry.name.is_empty()
                && entry
                    .name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                && !entry.name.starts_with('-')
                && !entry.name.ends_with('-'),
            "registry name `{}` is not kebab-case",
            entry.name
        );
        assert!(!entry.summary.is_empty(), "`{}` has no summary", entry.name);
        assert!(
            !entry.paper_section.is_empty(),
            "`{}` has no paper section",
            entry.name
        );
    }
}

#[test]
fn find_round_trips_every_name_into_a_working_estimator() {
    for entry in registry::all() {
        let found = registry::find(entry.name)
            .unwrap_or_else(|| panic!("find(`{}`) returned None", entry.name));
        assert!(std::ptr::eq(found, entry));
        let mut tool = found.build(&ToolConfig::quick());
        assert!(
            matches!(tool.next(None), Action::Send(_)),
            "`{}` must start by probing",
            entry.name
        );
    }
}
