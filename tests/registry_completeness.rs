//! Registry hygiene that needs a running binary: name uniqueness and
//! the find() round trip. Registry *exhaustiveness* — every module in
//! `tools/` has an entry and every entry points at a real module — is
//! checked statically by abw-lint's D9 rule (`abw-lint --list-rules`),
//! which replaced the filesystem scan that used to live here.

use std::collections::BTreeSet;

use abwe::core::tools::registry::{self, ToolConfig};
use abwe::core::tools::Action;

#[test]
fn names_are_unique_and_kebab_case() {
    let mut seen = BTreeSet::new();
    for entry in registry::all() {
        assert!(
            seen.insert(entry.name),
            "duplicate registry name `{}`",
            entry.name
        );
        assert!(
            !entry.name.is_empty()
                && entry
                    .name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                && !entry.name.starts_with('-')
                && !entry.name.ends_with('-'),
            "registry name `{}` is not kebab-case",
            entry.name
        );
        assert!(!entry.summary.is_empty(), "`{}` has no summary", entry.name);
        assert!(
            !entry.paper_section.is_empty(),
            "`{}` has no paper section",
            entry.name
        );
    }
}

#[test]
fn find_round_trips_every_name_into_a_working_estimator() {
    for entry in registry::all() {
        let found = registry::find(entry.name)
            .unwrap_or_else(|| panic!("find(`{}`) returned None", entry.name));
        assert!(std::ptr::eq(found, entry));
        let mut tool = found.build(&ToolConfig::quick());
        assert!(
            matches!(tool.next(None), Action::Send(_)),
            "`{}` must start by probing",
            entry.name
        );
    }
}
