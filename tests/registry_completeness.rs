//! Registry hygiene that needs a running binary: name uniqueness and
//! the find() round trip. Registry *exhaustiveness* — every module in
//! `tools/` has an entry and every entry points at a real module — is
//! checked statically by abw-lint's D9 rule (`abw-lint --list-rules`),
//! which replaced the filesystem scan that used to live here.

use std::collections::BTreeSet;

use abwe::core::tools::registry::{self, ToolConfig};
use abwe::core::tools::Action;

#[test]
fn names_are_unique_and_kebab_case() {
    let mut seen = BTreeSet::new();
    for entry in registry::all() {
        assert!(
            seen.insert(entry.name),
            "duplicate registry name `{}`",
            entry.name
        );
        assert!(
            !entry.name.is_empty()
                && entry
                    .name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
                && !entry.name.starts_with('-')
                && !entry.name.ends_with('-'),
            "registry name `{}` is not kebab-case",
            entry.name
        );
        assert!(!entry.summary.is_empty(), "`{}` has no summary", entry.name);
        assert!(
            !entry.paper_section.is_empty(),
            "`{}` has no paper section",
            entry.name
        );
    }
}

#[test]
fn find_round_trips_every_name_into_a_working_estimator() {
    for entry in registry::all() {
        let found = registry::find(entry.name)
            .unwrap_or_else(|| panic!("find(`{}`) returned None", entry.name));
        assert!(std::ptr::eq(found, entry));
        let mut tool = found.build(&ToolConfig::quick());
        assert!(
            matches!(tool.next(None), Action::Send(_)),
            "`{}` must start by probing",
            entry.name
        );
    }
}

/// `BENCH_*.json` shows byte-identical cost rows for two tool pairs —
/// `igi`/`ptr` (same probe packets, same events) and
/// `pathchirp`/`schirp`. That is genuine, not a registry bug: each
/// pair shares one probing engine (`ptr` is the `Igi` gap-increase
/// train with the turning-point *rate* estimator instead of the IGI
/// formula; `schirp` sends pathChirp's exact chirp stream and only
/// smooths the receiver-side delay series). Identical probe streams
/// must cost identical packets and events; this pins the equality so
/// an accidental config divergence (or a registry entry built from
/// the wrong constructor) shows up as a test failure, not as a silent
/// shift in the perf baseline.
#[test]
fn shared_engine_tool_pairs_have_identical_probe_cost() {
    use abwe::core::scenario::{Scenario, SingleHopConfig};
    use abwe::netsim::SimDuration;

    let probe_cost = |name: &str| -> (u64, u64) {
        let entry = registry::find(name).unwrap();
        let mut s = Scenario::single_hop(&SingleHopConfig {
            seed: 11,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_millis(500));
        let mut tool = entry.build(&ToolConfig::quick());
        let mut session = s.session();
        let events_before = s.sim.counters().injected;
        let verdict = session.drive(&mut s.sim, tool.as_mut());
        (
            verdict.probe_packets(),
            s.sim.counters().injected - events_before,
        )
    };
    for (a, b) in [("igi", "ptr"), ("pathchirp", "schirp")] {
        assert_eq!(
            probe_cost(a),
            probe_cost(b),
            "`{a}` and `{b}` share a probing engine; their probe cost must match"
        );
    }
}
