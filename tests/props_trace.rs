//! Property-based tests of the avail-bw process index: busy-time
//! bounds, additivity under window splits, and consistency between
//! utilisation and avail-bw, over random interval sets.

use abwe::trace::AvailBw;
use proptest::prelude::*;

/// Generates sorted, non-overlapping busy intervals inside [0, horizon).
fn intervals_strategy(horizon: u64) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..horizon, 1u64..horizon / 10), 0..40).prop_map(move |raw| {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut cursor = 0u64;
        for (start, len) in raw {
            let s = cursor.max(start.min(horizon - 1));
            let e = (s + len).min(horizon);
            if e > s {
                out.push((s, e));
                cursor = e;
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// 0 <= busy(a,b) <= b-a, and avail in [0, C].
    #[test]
    fn busy_time_bounded(
        intervals in intervals_strategy(1_000_000),
        a in 0u64..999_999,
        len in 1u64..500_000,
    ) {
        let p = AvailBw::new(100.0, &intervals, (0, 1_000_000));
        let b = (a + len).min(1_000_000);
        if b > a {
            let busy = p.busy_ns(a, b);
            prop_assert!(busy <= b - a);
            let avail = p.avail(a, b);
            prop_assert!((0.0..=100.0 + 1e-9).contains(&avail));
            // utilisation + avail/C = 1
            let u = p.utilization(a, b);
            prop_assert!((u + avail / 100.0 - 1.0).abs() < 1e-12);
        }
    }

    /// busy(a,c) = busy(a,b) + busy(b,c) for any split point b.
    #[test]
    fn busy_time_additive(
        intervals in intervals_strategy(1_000_000),
        mut cuts in prop::collection::vec(0u64..1_000_000, 3),
    ) {
        cuts.sort_unstable();
        let (a, b, c) = (cuts[0], cuts[1], cuts[2]);
        let p = AvailBw::new(10.0, &intervals, (0, 1_000_000));
        prop_assert_eq!(p.busy_ns(a, c), p.busy_ns(a, b) + p.busy_ns(b, c));
    }

    /// The whole-horizon busy time equals the sum of the intervals.
    #[test]
    fn total_busy_matches_intervals(intervals in intervals_strategy(1_000_000)) {
        let p = AvailBw::new(10.0, &intervals, (0, 1_000_000));
        let expected: u64 = intervals.iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(p.busy_ns(0, 1_000_000), expected);
    }

    /// Population means at any timescale that tiles the horizon equal
    /// the global mean.
    #[test]
    fn population_mean_is_global_mean(
        intervals in intervals_strategy(1_000_000),
        divisor in 1u64..50,
    ) {
        let tau = 1_000_000 / divisor;
        if tau * divisor == 1_000_000 {
            let p = AvailBw::new(100.0, &intervals, (0, 1_000_000));
            let pop = p.population(tau);
            prop_assert!((pop.mean() - p.mean()).abs() < 1e-6);
        }
    }
}
