//! Cross-crate pipelines: simulate → record busy periods → extract the
//! avail-bw process → estimate, with every stage's numbers agreeing.

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::tools::direct::{DirectConfig, DirectProber};
use abwe::netsim::SimDuration;
use abwe::stats::sampling::relative_error;
use abwe::traffic::SizeDist;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ground_truth_matches_configuration_across_models() {
    for (cross, tolerance) in [
        (CrossKind::Cbr, 0.01),
        (CrossKind::Poisson, 0.03),
        (CrossKind::ParetoOnOff, 0.10),
        (CrossKind::ParetoInterarrival, 0.05),
    ] {
        let mut s = Scenario::single_hop(&SingleHopConfig {
            cross,
            ..SingleHopConfig::default()
        });
        s.warm_up(SimDuration::from_secs(1));
        s.sim.run_for(SimDuration::from_secs(15));
        let gt = s.ground_truth(0);
        let err = relative_error(gt.mean(), 25e6).abs();
        assert!(
            err < tolerance,
            "{cross:?}: ground-truth mean {:.2} Mb/s (err {:.3})",
            gt.mean() / 1e6,
            err
        );
    }
}

#[test]
fn probing_estimate_matches_ground_truth_not_just_configuration() {
    // estimate and ground truth are computed from the SAME run, so they
    // must agree even more tightly than either agrees with the nominal
    // configuration
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::Poisson,
        cross_sizes: SizeDist::internet_mix(),
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    let mut runner = s.runner();
    let est = DirectProber::new(DirectConfig {
        streams: 60,
        ..DirectConfig::canonical()
    })
    .run(&mut s.sim, &mut runner);
    assert!(
        relative_error(est.avail_bps, 25e6).abs() < 0.10,
        "estimate {:.2} Mb/s",
        est.avail_bps / 1e6
    );
    // ground truth over a probe-free window after the measurement (the
    // probing itself consumes ~40 Mb/s while a stream is in flight, so
    // the window during probing reflects probe + cross load, not A)
    s.measure_from = s.sim.now();
    s.sim.run_for(SimDuration::from_secs(10));
    let gt = s.ground_truth(0).mean();
    assert!(
        relative_error(gt, 25e6).abs() < 0.05,
        "ground truth {:.2} Mb/s",
        gt / 1e6
    );
}

#[test]
fn poisson_sampling_of_live_link_is_unbiased() {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross: CrossKind::ParetoOnOff,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_secs(1));
    s.sim.run_for(SimDuration::from_secs(20));
    let gt = s.ground_truth(0);
    let mut rng = StdRng::seed_from_u64(11);
    // many Poisson samples at 10 ms must average to the process mean
    let samples = gt.poisson_sample(&mut rng, 10_000_000, 2000);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    assert!(
        relative_error(mean, gt.mean()).abs() < 0.03,
        "sampled mean {:.2} vs process mean {:.2} Mb/s",
        mean / 1e6,
        gt.mean() / 1e6
    );
}

#[test]
fn multi_hop_path_avail_is_the_minimum() {
    use abwe::core::scenario::HopSpec;
    let mk = |rate: f64| HopSpec {
        cross_rate_bps: rate,
        ..HopSpec::canonical(CrossKind::Poisson)
    };
    // hop 1 is tightest: avail 15 Mb/s vs 35/30 on the others
    let mut s = Scenario::from_hops(vec![mk(15e6), mk(35e6), mk(20e6)], 9);
    s.warm_up(SimDuration::from_secs(1));
    s.sim.run_for(SimDuration::from_secs(10));
    let path_avail = s.path_avail_bps(s.measure_from, s.sim.now());
    assert!(
        relative_error(path_avail, 15e6).abs() < 0.05,
        "path avail {:.2} Mb/s, expected 15",
        path_avail / 1e6
    );
    assert_eq!(s.tight_hop().0, 1);
}
