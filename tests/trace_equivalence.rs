//! JSONL trace **byte** identity across worker counts.
//!
//! `ABW_TRACE` artifacts are part of the executor's determinism
//! contract: a parallel run must produce the exact same bytes as a
//! serial run, because workers buffer their events thread-locally and
//! the executor replays the buffers in job-index order through the same
//! JSONL formatter. These tests install an in-memory process-global
//! recorder, run an experiment at 1 and 4 workers, and diff the raw
//! bytes.
//!
//! The process-global recorder is shared state, so every test here
//! holds `GLOBAL_LOCK` — and trace tests live in this separate
//! integration binary so they cannot interleave with other tests'
//! simulators.

use std::io;
use std::sync::{Arc, Mutex, OnceLock};

use abw_core::experiments::shootout::{self, ShootoutConfig};
use abw_core::experiments::train_length::{self, TrainLengthConfig};
use abw_exec::Executor;
use abw_obs::JsonlRecorder;

static GLOBAL_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK
        .get_or_init(Mutex::default)
        .lock()
        .expect("global test lock poisoned")
}

/// A cloneable in-memory sink: the recorder writes through one handle
/// while the test keeps another to read the bytes back out.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().expect("buffer poisoned").clone()
    }
}

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Runs `work` with an in-memory global JSONL recorder installed and
/// returns the trace bytes it produced.
fn traced<F: FnOnce()>(work: F) -> Vec<u8> {
    let buf = SharedBuf::default();
    abw_obs::global::set_global(JsonlRecorder::new(buf.clone()));
    work();
    abw_obs::global::clear_global();
    buf.bytes()
}

#[test]
fn shootout_trace_bytes_are_identical_across_worker_counts() {
    let _guard = global_lock();
    let config = ShootoutConfig {
        seeds: vec![7, 11],
        ..ShootoutConfig::quick()
    };
    let serial = traced(|| {
        shootout::run_with(&config, &Executor::new(1));
    });
    let parallel = traced(|| {
        shootout::run_with(&config, &Executor::new(4));
    });
    assert!(!serial.is_empty(), "trace must not be empty");
    assert_eq!(
        serial, parallel,
        "JSONL trace bytes diverged between 1 and 4 workers"
    );
}

#[test]
fn train_length_trace_bytes_are_identical_across_worker_counts() {
    let _guard = global_lock();
    let config = TrainLengthConfig {
        repetitions: 3,
        packet_budget: 120,
        ..TrainLengthConfig::quick()
    };
    let serial = traced(|| {
        train_length::run_with(&config, &Executor::new(1));
    });
    let parallel = traced(|| {
        train_length::run_with(&config, &Executor::new(4));
    });
    assert!(!serial.is_empty(), "trace must not be empty");
    assert_eq!(
        serial, parallel,
        "JSONL trace bytes diverged between 1 and 4 workers"
    );
}

#[test]
fn manifest_totals_are_identical_across_worker_counts() {
    let _guard = global_lock();
    let config = TrainLengthConfig {
        repetitions: 2,
        packet_budget: 120,
        ..TrainLengthConfig::quick()
    };
    let totals = |workers: usize| {
        abw_obs::global::begin_manifest_capture();
        train_length::run_with(&config, &Executor::new(workers));
        abw_obs::global::take_manifest().expect("manifest capture active")
    };
    let serial = totals(1);
    let parallel = totals(4);
    assert!(!serial.counters.is_empty(), "manifest must have counters");
    assert_eq!(serial.counters, parallel.counters);
    assert_eq!(serial.sim_time_ns, parallel.sim_time_ns);
    assert_eq!(serial.links, parallel.links);
}
