//! Golden pins for the scenario DSL.
//!
//! The `.scn` files under `tests/golden/scenarios/` are the canonical
//! renderings of the shootout, loss-sweep and tracking configurations.
//! Each test (a) builds the same spec programmatically and asserts
//! `to_spec` reproduces the committed bytes exactly, (b) reparses the
//! file and asserts structural equality, and (c) proves a DSL-built
//! scenario is bit-identical to the hand-built Rust one by comparing
//! the verdict CSV both sides produce over three seeds.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! ABW_UPDATE_GOLDEN=1 cargo test --test golden_scenarios
//! ```
//! then commit the diff under `tests/golden/scenarios/` with the reason.

use std::path::Path;

use abw_exec::Executor;
use abw_netsim::impair::ImpairmentConfig;
use abw_netsim::SimDuration;
use abwe::core::experiments::shootout::shootout_tools;
use abwe::core::scenario::dsl::{run_spec, ScenarioSpec};
use abwe::core::scenario::fuzz::outcome_line;
use abwe::core::scenario::{CrossKind, HopSpec, Scenario, SingleHopConfig};
use abwe::core::tools::registry::{self, ToolConfig};

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/scenarios")
        .join(name)
}

fn check_golden(name: &str, spec: &ScenarioSpec) {
    let path = golden_path(name);
    let rendered = spec.to_spec();
    if std::env::var_os("ABW_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden/scenarios");
        std::fs::write(&path, &rendered).expect("write golden spec");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run with ABW_UPDATE_GOLDEN=1 to create it)",
            path.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "{name}: to_spec drifted from the committed golden spec;\n\
         if the change is intentional, regenerate with ABW_UPDATE_GOLDEN=1"
    );
    let reparsed = ScenarioSpec::parse(&committed, path.to_str().unwrap())
        .expect("committed golden spec must parse");
    assert_eq!(
        spec, &reparsed,
        "{name}: parse is not the inverse of to_spec"
    );
}

/// The shootout configuration: canonical Poisson hop, the first three
/// default seeds, every avail-bw tool (capacity excluded, as in the
/// experiment).
fn shootout_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "shootout-quick".to_string(),
        seeds: vec![11, 22, 33],
        tools: shootout_tools().map(|t| t.name.to_string()).collect(),
        hops: vec![HopSpec::canonical(CrossKind::Poisson)],
        ..ScenarioSpec::default()
    }
}

/// One cell of the loss sweep: canonical hop with 1% i.i.d. loss, the
/// whole registry (no `tools` line = every tool, as in the experiment).
fn loss_sweep_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "loss-sweep-quick".to_string(),
        seeds: vec![11, 22, 33],
        hops: vec![HopSpec::canonical(CrossKind::Poisson)
            .with_impairment(ImpairmentConfig::iid_loss(0.01))],
        ..ScenarioSpec::default()
    }
}

/// The tracking configuration's first phase: delphi and ptr re-estimate
/// over one live session (three rounds, no simulator rebuild).
fn tracking_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "tracking-quick".to_string(),
        seeds: vec![0x77AC],
        tools: vec!["delphi".to_string(), "ptr".to_string()],
        rounds: 3,
        hops: vec![HopSpec::canonical(CrossKind::Poisson)],
        ..ScenarioSpec::default()
    }
}

#[test]
fn shootout_spec_matches_golden() {
    check_golden("shootout.scn", &shootout_spec());
}

#[test]
fn loss_sweep_spec_matches_golden() {
    check_golden("loss_sweep.scn", &loss_sweep_spec());
}

#[test]
fn tracking_spec_matches_golden() {
    check_golden("tracking.scn", &tracking_spec());
}

/// Renders the verdict CSV a hand-built Rust scenario produces for the
/// given tools × seeds, driving `rounds` fresh estimators over one live
/// session per cell — the construction every experiment binary uses.
fn rust_built_csv(
    build: &dyn Fn(u64) -> Scenario,
    tools: &[&str],
    seeds: &[u64],
    rounds: u32,
    tool_config: &ToolConfig,
) -> String {
    let mut lines = Vec::new();
    for tool_name in tools {
        let entry = registry::find(tool_name).expect("registered tool");
        for &seed in seeds {
            let mut s = build(seed);
            let mut session = s.session();
            for round in 0..rounds {
                let mut tool = entry.build(tool_config);
                let verdict = session.drive(&mut s.sim, tool.as_mut());
                lines.push(outcome_line(&abwe::core::scenario::dsl::SpecOutcome {
                    tool: entry.name,
                    seed,
                    round,
                    verdict,
                }));
            }
        }
    }
    lines.join("\n")
}

fn dsl_csv(spec: &ScenarioSpec) -> String {
    run_spec(spec, &Executor::new(1))
        .iter()
        .map(outcome_line)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn dsl_built_shootout_matches_rust_built() {
    // trim to the two cheapest tools: the equality claim is about the
    // construction path, not the tool set (pinned by the golden above)
    let mut spec = shootout_spec();
    spec.tools = vec!["spruce".to_string(), "ptr".to_string()];

    let rust = rust_built_csv(
        &|seed| {
            let mut s = Scenario::single_hop(&SingleHopConfig {
                cross: CrossKind::Poisson,
                seed,
                ..SingleHopConfig::default()
            });
            s.warm_up(SimDuration::from_millis(500));
            s
        },
        &["spruce", "ptr"],
        &[11, 22, 33],
        1,
        &ToolConfig {
            tight_capacity_bps: 50e6,
            quick: true,
        },
    );
    assert_eq!(dsl_csv(&spec), rust);
}

#[test]
fn dsl_built_loss_sweep_matches_rust_built() {
    let mut spec = loss_sweep_spec();
    spec.tools = vec!["spruce".to_string(), "ptr".to_string()];

    let rust = rust_built_csv(
        &|seed| {
            let mut s = Scenario::single_hop(&SingleHopConfig {
                cross: CrossKind::Poisson,
                impairment: Some(ImpairmentConfig::iid_loss(0.01)),
                seed,
                ..SingleHopConfig::default()
            });
            s.warm_up(SimDuration::from_millis(500));
            s
        },
        &["spruce", "ptr"],
        &[11, 22, 33],
        1,
        &ToolConfig {
            tight_capacity_bps: 50e6,
            quick: true,
        },
    );
    assert_eq!(dsl_csv(&spec), rust);
}

#[test]
fn dsl_built_tracking_matches_rust_built() {
    let spec = tracking_spec();

    let rust = rust_built_csv(
        &|seed| {
            let mut s = Scenario::from_hops(vec![HopSpec::canonical(CrossKind::Poisson)], seed);
            s.warm_up(SimDuration::from_millis(500));
            s
        },
        &["delphi", "ptr"],
        &[0x77AC],
        3,
        &ToolConfig {
            tight_capacity_bps: 50e6,
            quick: true,
        },
    );
    assert_eq!(dsl_csv(&spec), rust);
}
