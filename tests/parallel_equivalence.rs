//! Serial-equivalence harness for the parallel executor.
//!
//! The contract `abw-exec` sells is strict: a parallel run is
//! **bit-identical** to a serial run — same estimates (every f64 bit),
//! same rendered tables, same aggregation — for any worker count. These
//! tests pin that contract for every refactored experiment by running
//! each one with an explicit 1-worker and 4-worker executor and
//! comparing the `Debug` renderings (Rust's shortest-round-trip float
//! formatting makes `{:?}` equality equivalent to f64 bit equality).
//!
//! JSONL trace byte-identity is pinned separately in
//! `trace_equivalence.rs` — the process-global recorder it installs
//! must not leak into these tests.

use abw_bench::reports::{loss_sweep_table, shootout_table, table1_table};
use abw_bench::Format;
use abw_core::experiments::loss_sweep::{self, LossSweepConfig};
use abw_core::experiments::pairs_vs_trains::{self, PairsVsTrainsConfig};
use abw_core::experiments::shootout::{self, ShootoutConfig};
use abw_core::experiments::tcp_throughput::{self, TcpThroughputConfig};
use abw_core::experiments::train_length::{self, TrainLengthConfig};
use abw_core::experiments::trend_thresholds::{self, TrendThresholdsConfig};
use abw_core::experiments::variability::{self, VariabilityConfig};
use abw_exec::Executor;

const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC01D];

fn serial() -> Executor {
    Executor::new(1)
}

fn parallel() -> Executor {
    Executor::new(4)
}

#[test]
fn shootout_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let config = ShootoutConfig {
            seeds: vec![seed, seed ^ 0xFF, seed.rotate_left(7)],
            ..ShootoutConfig::quick()
        };
        let a = shootout::run_with(&config, &serial());
        let b = shootout::run_with(&config, &parallel());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed:#x}");
        // the rendered artifact is identical too, not just the numbers
        assert_eq!(
            shootout_table(&a).render(Format::Csv),
            shootout_table(&b).render(Format::Csv)
        );
    }
}

#[test]
fn loss_sweep_is_bit_identical_across_worker_counts() {
    // Impairment RNG streams are per-link and seeded from the scenario
    // seed, so injected faults must not introduce any worker-count
    // dependence either.
    let config = LossSweepConfig {
        loss_rates: vec![0.0, 0.05],
        seeds: vec![0xA11CE, 0xB0B],
        ..LossSweepConfig::quick()
    };
    let a = loss_sweep::run_with(&config, &serial());
    let b = loss_sweep::run_with(&config, &parallel());
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(
        loss_sweep_table(&a).render(Format::Csv),
        loss_sweep_table(&b).render(Format::Csv)
    );
}

#[test]
fn table1_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let config = PairsVsTrainsConfig {
            seed,
            pool_size: 100,
            ..PairsVsTrainsConfig::quick()
        };
        let a = pairs_vs_trains::run_with(&config, &serial());
        let b = pairs_vs_trains::run_with(&config, &parallel());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed:#x}");
        assert_eq!(
            table1_table(&a).render(Format::Csv),
            table1_table(&b).render(Format::Csv)
        );
    }
}

#[test]
fn tcp_throughput_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let config = TcpThroughputConfig {
            seed,
            windows: vec![4, 64],
            measure: abw_netsim::SimDuration::from_secs(5),
            ..TcpThroughputConfig::quick()
        };
        let a = tcp_throughput::run_with(&config, &serial());
        let b = tcp_throughput::run_with(&config, &parallel());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed:#x}");
    }
}

#[test]
fn trend_thresholds_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let config = TrendThresholdsConfig {
            seed,
            streams: 10,
            ..TrendThresholdsConfig::quick()
        };
        let a = trend_thresholds::run_with(&config, &serial());
        let b = trend_thresholds::run_with(&config, &parallel());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed:#x}");
    }
}

#[test]
fn variability_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let config = VariabilityConfig {
            seed,
            trials: 50,
            ..VariabilityConfig::quick()
        };
        let a = variability::run_with(&config, &serial());
        let b = variability::run_with(&config, &parallel());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed:#x}");
    }
}

#[test]
fn train_length_is_bit_identical_across_worker_counts() {
    for seed in SEEDS {
        let config = TrainLengthConfig {
            seed,
            repetitions: 3,
            packet_budget: 120,
            ..TrainLengthConfig::quick()
        };
        let a = train_length::run_with(&config, &serial());
        let b = train_length::run_with(&config, &parallel());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed:#x}");
    }
}
