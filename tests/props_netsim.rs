//! Property-based tests of the simulator's core invariants: packet
//! conservation, FIFO ordering, and capacity ceilings, over randomised
//! topologies and traffic.

use abwe::netsim::{
    packet_to, Agent, AgentId, CountingSink, Ctx, FlowId, Impairment, ImpairmentConfig, LinkConfig,
    LinkId, LossModel, Packet, PacketKind, PathId, SimDuration, Simulator,
};
use proptest::prelude::*;

/// Sends `n` packets with the given gaps (cycled) and sizes (cycled).
struct ScriptedSender {
    path: PathId,
    dst: AgentId,
    gaps_us: Vec<u32>,
    sizes: Vec<u32>,
    n: u32,
    sent: u32,
}

impl Agent for ScriptedSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule_in(SimDuration::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sent >= self.n {
            return;
        }
        let size = self.sizes[self.sent as usize % self.sizes.len()];
        let p = packet_to(
            self.dst,
            self.path,
            FlowId(0),
            size,
            self.sent as u64,
            PacketKind::Data,
        );
        ctx.send(p);
        self.sent += 1;
        let gap = self.gaps_us[self.sent as usize % self.gaps_us.len()];
        ctx.schedule_in(SimDuration::from_micros(gap as u64), 0);
    }
}

/// Records arrival order for FIFO checks.
#[derive(Default)]
struct OrderSink {
    seqs: Vec<u64>,
    bytes: u64,
    first: Option<abwe::netsim::SimTime>,
    last: Option<abwe::netsim::SimTime>,
}

impl Agent for OrderSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, p: Packet) {
        self.seqs.push(p.seq);
        self.bytes += p.size as u64;
        if self.first.is_none() {
            self.first = Some(ctx.now());
        }
        self.last = Some(ctx.now());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// injected = delivered + dropped + expired at quiescence, for any
    /// topology depth, queue bound, gap and size pattern.
    #[test]
    fn packet_conservation(
        hops in 1usize..5,
        queue_kb in prop::option::of(4u64..64),
        gaps in prop::collection::vec(10u32..5000, 1..6),
        sizes in prop::collection::vec(40u32..1500, 1..6),
        n in 1u32..400,
    ) {
        let mut sim = Simulator::new();
        let links: Vec<LinkId> = (0..hops)
            .map(|_| {
                let mut cfg = LinkConfig::new(10e6, SimDuration::from_millis(1));
                cfg.queue_bytes = queue_kb.map(|k| k * 1024);
                sim.add_link(cfg)
            })
            .collect();
        let path = sim.add_path(links);
        let sink = sim.add_agent(Box::new(CountingSink::new()));
        sim.add_agent(Box::new(ScriptedSender {
            path,
            dst: sink,
            gaps_us: gaps,
            sizes,
            n,
            sent: 0,
        }));
        sim.run_to_quiescence();
        let c = sim.counters();
        prop_assert_eq!(
            c.injected,
            c.delivered + sim.total_drops() + c.ttl_expired
        );
        let delivered = sim.agent::<CountingSink>(sink).packets;
        prop_assert_eq!(delivered, c.delivered);
    }

    /// A single flow through a FIFO path arrives in send order, always.
    #[test]
    fn fifo_ordering(
        hops in 1usize..4,
        gaps in prop::collection::vec(1u32..2000, 1..5),
        sizes in prop::collection::vec(40u32..1500, 1..5),
        n in 2u32..300,
    ) {
        let mut sim = Simulator::new();
        let links: Vec<LinkId> = (0..hops)
            .map(|_| sim.add_link(LinkConfig::new(20e6, SimDuration::from_micros(500))))
            .collect();
        let path = sim.add_path(links);
        let sink = sim.add_agent(Box::new(OrderSink::default()));
        sim.add_agent(Box::new(ScriptedSender {
            path,
            dst: sink,
            gaps_us: gaps,
            sizes,
            n,
            sent: 0,
        }));
        sim.run_to_quiescence();
        let s: &OrderSink = sim.agent(sink);
        prop_assert_eq!(s.seqs.len(), n as usize, "unbounded queues drop nothing");
        for w in s.seqs.windows(2) {
            prop_assert!(w[0] < w[1], "FIFO violated: {:?}", &s.seqs);
        }
    }

    /// Two impairments built from the same config and seed make the
    /// same ingress/egress decisions forever — the property the whole
    /// fault-injection layer's reproducibility rests on.
    #[test]
    fn impairment_decisions_replay_bit_identically(
        seed in 0u64..u64::MAX,
        p_loss in 0.0f64..1.0,
        p_gb in 0.0f64..1.0,
        p_bg in 0.001f64..1.0,
        loss_bad in 0.0f64..1.0,
        reorder in prop::option::of((0.0f64..1.0, 1u64..10_000)),
        jitter_us in prop::option::of(1u64..10_000),
        bursty in 0u32..2,
        draws in 1usize..500,
    ) {
        let loss = if bursty == 1 {
            LossModel::GilbertElliott {
                p_good_to_bad: p_gb,
                p_bad_to_good: p_bg,
                loss_bad,
                loss_good: 0.0,
            }
        } else {
            LossModel::Iid { p: p_loss }
        };
        let mut config = ImpairmentConfig::none().with_loss(loss);
        if let Some((prob, extra_us)) = reorder {
            config = config.with_reorder(prob, SimDuration::from_micros(extra_us));
        }
        if let Some(us) = jitter_us {
            config = config.with_jitter(SimDuration::from_micros(us));
        }
        let mut a = Impairment::new(config.clone(), seed);
        let mut b = Impairment::new(config, seed);
        for i in 0..draws {
            prop_assert_eq!(a.ingress(), b.ingress(), "ingress diverged at draw {}", i);
            prop_assert_eq!(
                a.egress_extra(),
                b.egress_extra(),
                "egress diverged at draw {}",
                i
            );
        }
    }

    /// Conservation holds with injected loss in the path: every packet
    /// is delivered, queue-dropped, impaired, or expired.
    #[test]
    fn packet_conservation_under_impairment(
        p in 0.0f64..0.6,
        imp_seed in 0u64..u64::MAX,
        queue_kb in prop::option::of(4u64..64),
        gaps in prop::collection::vec(10u32..5000, 1..6),
        n in 1u32..400,
    ) {
        let mut sim = Simulator::new();
        let mut cfg = LinkConfig::new(10e6, SimDuration::from_millis(1));
        cfg.queue_bytes = queue_kb.map(|k| k * 1024);
        let link = sim.add_link(cfg);
        sim.impair_link(link, ImpairmentConfig::iid_loss(p), imp_seed);
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(CountingSink::new()));
        sim.add_agent(Box::new(ScriptedSender {
            path,
            dst: sink,
            gaps_us: gaps,
            sizes: vec![1200],
            n,
            sent: 0,
        }));
        sim.run_to_quiescence();
        let c = sim.counters();
        prop_assert_eq!(
            c.injected,
            c.delivered + sim.total_drops() + sim.total_impaired() + c.ttl_expired
        );
    }

    /// Delivered throughput never exceeds the narrowest link's capacity.
    #[test]
    fn capacity_is_a_ceiling(
        capacity_mbps in 1u32..100,
        burst in 50u32..400,
        size in 100u32..1500,
    ) {
        let capacity = capacity_mbps as f64 * 1e6;
        let mut sim = Simulator::new();
        let link = sim.add_link(LinkConfig::new(capacity, SimDuration::ZERO));
        let path = sim.add_path(vec![link]);
        let sink = sim.add_agent(Box::new(OrderSink::default()));
        // blast packets back-to-back (1 us apart), far above capacity
        sim.add_agent(Box::new(ScriptedSender {
            path,
            dst: sink,
            gaps_us: vec![1],
            sizes: vec![size],
            n: burst,
            sent: 0,
        }));
        sim.run_to_quiescence();
        let s: &OrderSink = sim.agent(sink);
        let (Some(first), Some(last)) = (s.first, s.last) else {
            return Ok(());
        };
        if last > first {
            let rate = (s.bytes - size as u64) as f64 * 8.0
                / last.since(first).as_secs_f64();
            prop_assert!(
                rate <= capacity * 1.001,
                "delivered {rate} b/s over a {capacity} b/s link"
            );
        }
    }
}
