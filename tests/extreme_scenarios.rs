//! Extreme-but-valid scenarios: the corners of the spec space where
//! estimators historically fall over — an idle path (zero cross
//! traffic), a nearly saturated path (99% utilisation), and a queue one
//! packet deep (every second probe can be dropped).
//!
//! Each spec is parsed from DSL text and pushed through the fuzzer's
//! own `evaluate` gauntlet: exact round-trip, serial ≡ parallel
//! execution, and verdict sanity (finite estimate or a documented
//! clamped range, positive probe count) for **every** registry tool.

use abwe::core::scenario::dsl::ScenarioSpec;
use abwe::core::scenario::fuzz;
use abwe::core::tools::registry;

fn evaluate_all_tools(src: &str, name: &str) {
    let spec = ScenarioSpec::parse(src, name).expect("extreme spec must parse");
    // no `tools` line: the whole registry runs
    assert!(spec.tools.is_empty());
    let run = fuzz::evaluate(&spec, 2, None, None)
        .unwrap_or_else(|e| panic!("{name} failed the fuzz gauntlet: {e}"));
    assert!(
        run.timeouts.is_empty(),
        "{name}: unbounded run cannot time out"
    );
    assert_eq!(
        run.outcomes.len(),
        registry::all().len() * spec.seeds.len() * spec.rounds as usize,
        "{name}: every registry tool must produce a verdict"
    );
}

#[test]
fn idle_path_zero_cross_traffic() {
    evaluate_all_tools(
        "scenario extreme-idle\n\
         seeds = 7\n\
         \n\
         hop capacity=50000000 latency=1ms cross=cbr cross-rate=0 cross-sizes=1500\n",
        "extreme-idle.scn",
    );
}

#[test]
fn saturated_path_99_percent_utilisation() {
    evaluate_all_tools(
        "scenario extreme-saturated\n\
         seeds = 7\n\
         \n\
         hop capacity=50000000 latency=1ms cross=poisson cross-rate=49500000 \
         cross-sizes=1500\n",
        "extreme-saturated.scn",
    );
}

#[test]
fn queue_one_packet_deep() {
    evaluate_all_tools(
        "scenario extreme-shallow-queue\n\
         seeds = 7\n\
         \n\
         hop capacity=50000000 latency=1ms cross=poisson cross-rate=25000000 \
         cross-sizes=1500 queue=1500\n",
        "extreme-shallow-queue.scn",
    );
}
