//! Paired tool comparison via trace replay: two separate simulations fed
//! the same recorded cross traffic see *identical* conditions, so
//! between-tool differences cannot be sampling noise — the strongest
//! form of §4's "reproducible and controllable conditions".

use abwe::core::probe::{ProbeReceiver, ProbeRunner, ProbeSender};
use abwe::core::stream::StreamSpec;
use abwe::netsim::{CountingSink, FlowId, LinkConfig, SimDuration, SimTime, Simulator};
use abwe::trace::AvailBw;
use abwe::traffic::{PoissonProcess, RecordedTrace, Replay, SizeDist, SourceAgent};

/// Builds a single-hop simulation fed by a replayed trace, with probing
/// endpoints.
fn replay_sim(trace: RecordedTrace) -> (Simulator, ProbeRunner, abwe::netsim::LinkId) {
    let mut sim = Simulator::new();
    let link = sim.add_link(LinkConfig::new(50e6, SimDuration::from_millis(1)));
    let path = sim.add_path(vec![link]);
    let cross_sink = sim.add_agent(Box::new(CountingSink::new()));
    sim.add_agent(Box::new(SourceAgent::new(
        Box::new(Replay::once(trace)),
        path,
        cross_sink,
        FlowId(1),
    )));
    let receiver = sim.add_agent(Box::new(ProbeReceiver::new()));
    let sender = sim.add_agent(Box::new(ProbeSender::new(path, receiver, FlowId(2))));
    let runner = ProbeRunner::new(sender, receiver);
    (sim, runner, link)
}

fn capture_cross_traffic() -> RecordedTrace {
    let mut live = PoissonProcess::new(25e6, SizeDist::Constant(1500), 4242);
    // ~10 s of traffic at ~2083 pkt/s
    RecordedTrace::capture(&mut live, 21_000)
}

#[test]
fn identical_replays_produce_identical_links() {
    let trace = capture_cross_traffic();
    let horizon = SimTime::ZERO + SimDuration::from_secs(5);
    let run = |t: RecordedTrace| {
        let (mut sim, _runner, link) = replay_sim(t);
        sim.run_until(horizon);
        let process = AvailBw::from_link(sim.link(link), SimTime::ZERO, horizon);
        (
            sim.link(link).counters().forwarded_pkts,
            process.busy_ns(0, horizon.as_nanos()),
        )
    };
    let a = run(trace.clone());
    let b = run(trace);
    assert_eq!(a, b, "replayed traffic must be bit-identical");
}

#[test]
fn paired_probing_sees_the_same_cross_traffic() {
    let trace = capture_cross_traffic();
    // two *different* probing strategies against the identical traffic
    let probe = |t: RecordedTrace, spec: StreamSpec| {
        let (mut sim, mut runner, _) = replay_sim(t);
        sim.run_for(SimDuration::from_millis(500));
        let r = runner.run_stream(&mut sim, &spec);
        r.output_rate_bps().expect("stream received")
    };
    let train = StreamSpec::Periodic {
        rate_bps: 40e6,
        size: 1500,
        count: 100,
    };
    let ro_train = probe(trace.clone(), train.clone());
    // the same strategy replayed again is bit-identical
    let ro_again = probe(trace.clone(), train);
    assert_eq!(ro_train, ro_again);

    // a different strategy differs in measurement, not in conditions
    let pair = StreamSpec::Pair {
        rate_bps: 40e6,
        size: 1500,
    };
    let ro_pair = probe(trace, pair);
    assert_ne!(ro_train, ro_pair);
    // both see an overloaded 50/25 link: output rate bounded by capacity
    assert!(ro_train < 50e6 * 1.01);
    assert!(ro_pair < 50e6 * 1.01);
}

#[test]
fn replayed_mean_rate_matches_the_recording() {
    let trace = capture_cross_traffic();
    let recorded_rate = trace.mean_rate_bps();
    let (mut sim, _runner, link) = replay_sim(trace);
    let horizon = SimTime::ZERO + SimDuration::from_secs(8);
    sim.run_until(horizon);
    let process = AvailBw::from_link(sim.link(link), SimTime::ZERO, horizon);
    let served = 50e6 - process.mean();
    assert!(
        (served - recorded_rate).abs() / recorded_rate < 0.02,
        "served {:.2} Mb/s vs recorded {:.2} Mb/s",
        served / 1e6,
        recorded_rate / 1e6
    );
}
