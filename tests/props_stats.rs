//! Property-based tests of the statistics and fluid-model kernels.

use abwe::core::fluid;
use abwe::stats::ecdf::Ecdf;
use abwe::stats::running::Running;
use abwe::stats::timescale::variance_time;
use abwe::stats::trend::{median, pct, pdt};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let r = Running::from_samples(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((r.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((r.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
    }

    /// Merging accumulators in any split equals sequential accumulation.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let seq = Running::from_samples(&xs);
        let mut a = Running::from_samples(&xs[..split]);
        a.merge(&Running::from_samples(&xs[split..]));
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-9 * (1.0 + seq.mean().abs()));
        prop_assert!((a.variance() - seq.variance()).abs() < 1e-7 * (1.0 + seq.variance()));
    }

    /// The ECDF is a monotone step function from 0 to 1.
    #[test]
    fn ecdf_monotone(xs in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let e = Ecdf::new(xs.clone());
        let lo = e.min().unwrap();
        let hi = e.max().unwrap();
        prop_assert_eq!(e.cdf(lo - 1.0), 0.0);
        prop_assert_eq!(e.cdf(hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let y = e.cdf(x);
            prop_assert!(y >= prev);
            prev = y;
        }
    }

    /// Quantiles are samples, and ordered in q.
    #[test]
    fn quantiles_ordered(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(xs.clone());
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = e.quantile(q).unwrap();
            prop_assert!(xs.contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// PCT lies in [0,1]; PDT lies in [-1,1]; both are exact on
    /// monotone series.
    #[test]
    fn trend_statistics_bounded(xs in prop::collection::vec(-1e3f64..1e3, 2..150)) {
        let p = pct(&xs);
        let d = pdt(&xs);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((-1.0..=1.0).contains(&d));
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        if sorted.len() >= 2 {
            prop_assert_eq!(pct(&sorted), 1.0);
            prop_assert!((pdt(&sorted) - 1.0).abs() < 1e-9);
        }
    }

    /// The median is order-invariant and bounded by min/max.
    #[test]
    fn median_properties(mut xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let m1 = median(&xs);
        xs.reverse();
        let m2 = median(&xs);
        prop_assert_eq!(m1, m2);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m1 >= lo && m1 <= hi);
    }

    /// Aggregating a series can only shrink its variance (Equation 4's
    /// direction, for any correlation structure).
    #[test]
    fn aggregation_shrinks_variance(xs in prop::collection::vec(-1e3f64..1e3, 16..256)) {
        let vt = variance_time(&xs, &[1, 2, 4]);
        if vt.len() == 3 {
            prop_assert!(vt[1].1 <= vt[0].1 * 1.5 + 1e-9);
            // strict Cauchy-Schwarz bound: Var[mean of k] <= Var
            prop_assert!(vt[2].1 <= vt[0].1 + 1e-9);
        }
    }

    /// Equation 9 inverts Equation 8 exactly whenever Ri > A.
    #[test]
    fn fluid_inversion_roundtrip(
        ct_mbps in 1.0f64..1000.0,
        avail_frac in 0.01f64..0.99,
        over_frac in 1.01f64..5.0,
    ) {
        let ct = ct_mbps * 1e6;
        let avail = ct * avail_frac;
        let ri = (avail * over_frac).min(ct * 10.0);
        let ro = fluid::output_rate(ct, ri, avail);
        prop_assert!(ro < ri, "must expand when Ri > A");
        let est = fluid::direct_probing_estimate(ct, ri, ro);
        prop_assert!((est - avail).abs() / avail < 1e-9);
    }

    /// Equation 8 is monotone in A and bounded by Ri and Ct.
    #[test]
    fn fluid_output_rate_bounds(
        ct_mbps in 1.0f64..1000.0,
        avail_frac in 0.0f64..1.0,
        ri_frac in 0.01f64..3.0,
    ) {
        let ct = ct_mbps * 1e6;
        let avail = ct * avail_frac;
        let ri = ct * ri_frac;
        let ro = fluid::output_rate(ct, ri, avail);
        prop_assert!(ro <= ri + 1e-9);
        prop_assert!(ro <= ct + 1e-9 || ri <= avail);
        prop_assert!(ro > 0.0);
    }
}
