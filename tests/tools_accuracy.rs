//! End-to-end accuracy of every estimation tool on a known path — the
//! "reproducible and controllable conditions" comparison the paper's
//! summary calls for. Tolerances reflect each technique's published
//! character (pairs noisier than trains, burstiness biases downward).

use abwe::core::scenario::{CrossKind, Scenario, SingleHopConfig};
use abwe::core::tools::bfind::{Bfind, BfindConfig};
use abwe::core::tools::capacity::{CapacityConfig, CapacityProber};
use abwe::core::tools::direct::{DirectConfig, DirectProber};
use abwe::core::tools::igi::{Igi, IgiConfig};
use abwe::core::tools::pathchirp::{Pathchirp, PathchirpConfig};
use abwe::core::tools::pathload::{Pathload, PathloadConfig};
use abwe::core::tools::spruce::{Spruce, SpruceConfig};
use abwe::core::tools::topp::{Topp, ToppConfig};
use abwe::netsim::SimDuration;

const TRUTH: f64 = 25e6;

fn scenario(cross: CrossKind, seed: u64) -> Scenario {
    let mut s = Scenario::single_hop(&SingleHopConfig {
        cross,
        seed,
        ..SingleHopConfig::default()
    });
    s.warm_up(SimDuration::from_millis(500));
    s
}

#[test]
fn all_tools_agree_on_poisson_cross_traffic() {
    // every tool on its own scenario instance; all must land in a band
    // around the true 25 Mb/s appropriate to its technique
    let mut results: Vec<(&str, f64, f64)> = Vec::new(); // (tool, estimate, rel tolerance)

    {
        let mut s = scenario(CrossKind::Poisson, 1);
        let mut r = s.runner();
        let e = DirectProber::new(DirectConfig {
            streams: 40,
            ..DirectConfig::canonical()
        })
        .run(&mut s.sim, &mut r);
        results.push(("direct", e.avail_bps, 0.12));
    }
    {
        let mut s = scenario(CrossKind::Poisson, 2);
        let mut r = s.runner();
        let e = Spruce::new(SpruceConfig::new(50e6)).run(&mut s.sim, &mut r);
        // pair quantisation with 1500 B cross packets biases Spruce up
        results.push(("spruce", e.avail_bps, 0.45));
    }
    {
        let mut s = scenario(CrossKind::Poisson, 3);
        let mut r = s.runner();
        r.stream_gap = SimDuration::from_millis(5);
        let rep = Topp::new(ToppConfig::default()).run(&mut s.sim, &mut r);
        results.push(("topp", rep.avail_bps, 0.35));
    }
    {
        let mut s = scenario(CrossKind::Poisson, 4);
        let rep = Pathload::new(PathloadConfig::default()).run(&mut s);
        let mid = (rep.range_bps.0 + rep.range_bps.1) / 2.0;
        results.push(("pathload", mid, 0.25));
    }
    {
        let mut s = scenario(CrossKind::Poisson, 5);
        let mut r = s.runner();
        let e = Pathchirp::new(PathchirpConfig::default()).run(&mut s.sim, &mut r);
        results.push(("pathchirp", e.avail_bps, 0.40));
    }
    {
        let mut s = scenario(CrossKind::Poisson, 6);
        let mut r = s.runner();
        let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
        results.push(("igi", rep.igi_bps, 0.35));
        results.push(("ptr", rep.ptr_bps, 0.35));
    }
    {
        let mut s = scenario(CrossKind::Poisson, 7);
        let rep = Bfind::new(BfindConfig::default()).run(&mut s);
        results.push(("bfind", rep.avail_bps, 0.35));
    }

    for (tool, est, tol) in results {
        let err = (est - TRUTH).abs() / TRUTH;
        assert!(
            err <= tol,
            "{tool}: estimate {:.2} Mb/s, error {:.1}% exceeds {:.0}%",
            est / 1e6,
            err * 100.0,
            tol * 100.0
        );
    }
}

#[test]
fn iterative_tools_underestimate_on_bursty_traffic() {
    // Pitfall 6: burstiness biases rate-ratio tools downward; verify the
    // direction on Pareto ON-OFF traffic for PTR (the clean rate-ratio
    // iterative tool)
    let mut s = scenario(CrossKind::ParetoOnOff, 21);
    let mut r = s.runner();
    let rep = Igi::new(IgiConfig::default()).run(&mut s.sim, &mut r);
    assert!(
        rep.ptr_bps < TRUTH * 1.1,
        "PTR should not overestimate under bursty traffic: {:.2} Mb/s",
        rep.ptr_bps / 1e6
    );
}

#[test]
fn capacity_estimate_feeds_direct_probing() {
    // capacity tool → Ct estimate → direct probing, on a single-hop path
    // where tight = narrow so the pipeline is self-consistent
    let mut s = scenario(CrossKind::Poisson, 31);
    let mut r = s.runner();
    let cap = CapacityProber::new(CapacityConfig::default()).run(&mut s.sim, &mut r);
    assert!(
        (cap.capacity_bps - 50e6).abs() / 50e6 < 0.1,
        "capacity {:.2} Mb/s",
        cap.capacity_bps / 1e6
    );
    let est = DirectProber::new(DirectConfig {
        tight_capacity_bps: cap.capacity_bps,
        streams: 30,
        ..DirectConfig::canonical()
    })
    .run(&mut s.sim, &mut r);
    assert!(
        (est.avail_bps - TRUTH).abs() / TRUTH < 0.15,
        "pipeline estimate {:.2} Mb/s",
        est.avail_bps / 1e6
    );
}

#[test]
fn pathload_range_narrows_on_smooth_traffic() {
    // CBR: the avail-bw barely varies, so the range should be tight;
    // Pareto ON-OFF: the range must be wider
    let mut smooth = scenario(CrossKind::Cbr, 41);
    let r_smooth = Pathload::new(PathloadConfig::default()).run(&mut smooth);
    let w_smooth = r_smooth.range_bps.1 - r_smooth.range_bps.0;

    let mut bursty = scenario(CrossKind::ParetoOnOff, 42);
    let r_bursty = Pathload::new(PathloadConfig::default()).run(&mut bursty);
    let w_bursty = r_bursty.range_bps.1 - r_bursty.range_bps.0;

    assert!(
        w_bursty >= w_smooth,
        "bursty range ({:.1} Mb/s) should be at least as wide as CBR's ({:.1} Mb/s)",
        w_bursty / 1e6,
        w_smooth / 1e6
    );
}
